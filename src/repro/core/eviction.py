"""Section III-B: determining cache eviction sets from user space.

The attacker allocates a buffer (locally for the trojan, on the *remote*
GPU for the spy), then uses Algorithm 1 -- a pointer-chase kernel that
times a target address before and after chasing through candidate
addresses -- to find groups of addresses that hash to the same physical
cache set.  Everything is decided from measured latencies against the
thresholds of :mod:`repro.core.timing`; no physical addresses are ever
consulted.

Three layers are provided:

- :func:`find_eviction_set` -- the paper's incremental Algorithm 1 (grow
  the chase until the target is evicted, record the last address, remove
  it, continue), including the "skip ahead then revert" optimization.
- :func:`reduce_to_minimal` -- group-testing reduction used by the bulk
  builder (the paper: "we adopted some optimization methodologies by
  skipping some address accesses").
- :func:`build_eviction_sets` -- the production path exploiting the
  paper's observation that "data belonging to a page is indexed
  consecutively in the cache": discover the *page colors* once, then emit
  eviction sets for as many distinct cache sets as needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..errors import EvictionSetError, EvictionSetStaleError
from ..runtime.api import Runtime
from ..sim.ops import Access, Fence, ProbeSet, SharedStore, Sleep
from ..sim.process import DeviceBuffer, Process

__all__ = [
    "EvictionSet",
    "EvictionSetHealth",
    "Algorithm1Outcome",
    "run_algorithm1",
    "find_eviction_set",
    "reduce_to_minimal",
    "measure_associativity",
    "validate_eviction_set",
    "ValidationReport",
    "sets_alias",
    "deduplicate_eviction_sets",
    "build_eviction_sets",
    "PageColoring",
    "discover_page_coloring",
    "verify_set_health",
    "repair_eviction_set",
    "repair_eviction_sets",
]


@dataclass(frozen=True)
class EvictionSet:
    """A group of word indices (one per cache line) hashing to one set.

    ``set_id`` is an attacker-assigned label; the *physical* set index is
    unknown to the attacker (that is the whole alignment problem of
    Section IV-A).
    """

    buffer: DeviceBuffer
    indices: Tuple[int, ...]
    set_id: int = 0
    #: Optional provenance: (color_group, line_offset) for page-built sets.
    origin: Optional[Tuple[int, int]] = None

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class Algorithm1Outcome:
    """Timing evidence from one Algorithm 1 kernel launch."""

    first_access_cycles: float
    second_access_cycles: float
    evicted: bool


@dataclass(frozen=True)
class _Alg1Raw:
    first: float
    second: float
    dummy: int


def _install_chain(buffer: DeviceBuffer, indices: Sequence[int]) -> None:
    """Write a pointer chain through ``indices`` into the buffer data.

    Mirrors the paper's kernels, where ``__ldcg`` loads the *next index*
    from the current element (``nxtIdx = ldcg(otherPtr)``).
    """
    if not indices:
        return
    for here, there in zip(indices, list(indices[1:]) + [indices[0]]):
        buffer.store(here, there)


def _algorithm1_kernel(
    buffer: DeviceBuffer,
    target_index: int,
    chase_indices: Sequence[int],
    shared_times,
):
    """Literal transcription of Algorithm 1 (dependent pointer chase).

    The chain through ``chase_indices`` must already be installed in the
    buffer; the kernel follows it through *loaded values*, exactly like the
    paper's kernel, and lands the two target access times in shared memory
    (lines 7 and 21 of Algorithm 1).
    """
    first = yield Access(buffer, target_index)  # lines 1-5
    dummy = first.value
    yield Fence()  # line 6
    yield SharedStore(shared_times, 0, first.latency)  # line 7

    if chase_indices:
        next_index = chase_indices[0]
        for _ in range(len(chase_indices)):  # lines 9-14
            result = yield Access(buffer, next_index)
            dummy += result.value
            next_index = result.value
            yield Fence()

    second = yield Access(buffer, target_index)  # lines 16-19
    dummy += second.value
    yield Fence()  # line 20
    yield SharedStore(shared_times, 1, second.latency)  # line 21
    return _Alg1Raw(first.latency, second.latency, dummy)


def run_algorithm1(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    buffer: DeviceBuffer,
    target_index: int,
    chase_indices: Sequence[int],
    miss_threshold: float,
) -> Algorithm1Outcome:
    """Launch one Algorithm 1 kernel and decide eviction from the timing."""
    shared = process.shared_buffer("alg1_times", 2)
    _install_chain(buffer, chase_indices)
    raw = runtime.run_kernel(
        _algorithm1_kernel(buffer, target_index, chase_indices, shared),
        exec_gpu,
        process,
        name="algorithm1",
    )
    return Algorithm1Outcome(
        first_access_cycles=raw.first,
        second_access_cycles=raw.second,
        evicted=raw.second > miss_threshold,
    )


def _chase_evicts_target(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    buffer: DeviceBuffer,
    target_index: int,
    chase_indices: Sequence[int],
    miss_threshold: float,
) -> bool:
    """Fast conflict test: target, chase, target -- decided by timing.

    Uses :class:`ProbeSet` for the chase (identical cache effect to the
    pointer chain, one event instead of hundreds) and real ``Access`` ops
    for the timed target.
    """

    def kernel():
        yield Access(buffer, target_index)
        if chase_indices:
            yield ProbeSet(buffer, chase_indices, parallel=False)
        result = yield Access(buffer, target_index)
        return result.latency

    second = runtime.run_kernel(kernel(), exec_gpu, process, name="conflict_test")
    return second > miss_threshold


def find_eviction_set(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    buffer: DeviceBuffer,
    target_index: int,
    candidate_indices: Sequence[int],
    associativity: int,
    miss_threshold: float,
    skip_step: int = 8,
) -> EvictionSet:
    """The paper's incremental Algorithm 1 loop with the skip optimization.

    The chase is the candidate-pool prefix (minus already-identified
    members); it grows ``skip_step`` addresses per launch.  When the target
    gets evicted, the loop reverts and retests the skipped addresses one at
    a time to pin the exact address that caused the eviction (Section
    III-B), records it as a set member, removes it from the pool, and
    continues.

    Note the inherent property of the incremental method: the first
    eviction only appears once ``associativity`` same-set addresses are in
    the chase, so identifying ``associativity`` members needs a pool
    containing at least ``2 * associativity - 1`` of them.
    """
    pool = [i for i in candidate_indices if i != target_index]
    members: List[int] = []
    prefix = 0  # how many pool entries are currently in the chase

    def evicts(upto: int) -> bool:
        return _chase_evicts_target(
            runtime, process, exec_gpu, buffer, target_index, pool[:upto], miss_threshold
        )

    while prefix < len(pool) and len(members) < associativity:
        grown = min(prefix + skip_step, len(pool))
        if not evicts(grown):
            prefix = grown
            continue
        # Revert: test the skipped addresses one at a time to find the
        # exact eviction-causing address.
        culprit_at = None
        for cut in range(prefix + 1, grown + 1):
            if evicts(cut):
                culprit_at = cut - 1
                break
        if culprit_at is None:
            raise EvictionSetError(
                "eviction seen for the skipped block but not reproducible "
                "address-by-address (noise too high?)"
            )
        members.append(pool[culprit_at])
        del pool[culprit_at]
        prefix = culprit_at

    if len(members) < associativity:
        raise EvictionSetError(
            f"only {len(members)} conflicting addresses found for target "
            f"{target_index} (need {associativity}); the incremental method "
            f"needs >= {2 * associativity - 1} same-set candidates in the pool"
        )
    return EvictionSet(buffer=buffer, indices=tuple(members))


def reduce_to_minimal(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    buffer: DeviceBuffer,
    target_index: int,
    pool: Sequence[int],
    associativity: int,
    miss_threshold: float,
) -> List[int]:
    """Group-testing reduction of ``pool`` to ``associativity`` conflicting
    addresses (the bulk-path optimization)."""
    current = [i for i in pool if i != target_index]
    if not _chase_evicts_target(
        runtime, process, exec_gpu, buffer, target_index, current, miss_threshold
    ):
        raise EvictionSetError(
            f"candidate pool of {len(current)} does not evict target "
            f"{target_index}; pool too small for this set"
        )
    while len(current) > associativity:
        size = -(-len(current) // (associativity + 1))
        removed = False
        # If every chunk happens to contain a set member (possible once the
        # pool is small), retry with smaller chunks down to single elements.
        while size >= 1 and not removed:
            for start in range(0, len(current), size):
                trial = current[:start] + current[start + size :]
                if _chase_evicts_target(
                    runtime,
                    process,
                    exec_gpu,
                    buffer,
                    target_index,
                    trial,
                    miss_threshold,
                ):
                    current = trial
                    removed = True
                    break
            size //= 2
        if not removed:
            raise EvictionSetError(
                "reduction stuck: no single element is removable "
                "(threshold noise?)"
            )
    return current


def measure_associativity(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    buffer: DeviceBuffer,
    target_index: int,
    members: Sequence[int],
    miss_threshold: float,
) -> int:
    """Smallest prefix of ``members`` whose chase evicts the target.

    With LRU this equals the associativity (Table I's "cache lines per
    set": "the target address is evicted after every 16th address").
    """
    for count in range(1, len(members) + 1):
        if _chase_evicts_target(
            runtime,
            process,
            exec_gpu,
            buffer,
            target_index,
            members[:count],
            miss_threshold,
        ):
            return count
    raise EvictionSetError("members never evict the target; not a conflict set")


@dataclass
class ValidationReport:
    """Evidence behind Fig 5 for one eviction set."""

    #: Target re-access latency after chasing k = 1..assoc members.
    latencies_by_count: List[float] = field(default_factory=list)
    #: First chase length at which the target was evicted (None = never).
    eviction_at: Optional[int] = None
    #: Of ``repeats`` full-set chases, how many evicted the target.
    full_set_evictions: int = 0
    #: Of ``repeats`` (assoc-1)-length chases, how many evicted the target.
    short_set_evictions: int = 0
    repeats: int = 0

    def deterministic_lru(self, associativity: int) -> bool:
        """Eviction appears exactly at the associativity, every time."""
        return (
            self.eviction_at == associativity
            and self.full_set_evictions == self.repeats
            and self.short_set_evictions == 0
        )


def validate_eviction_set(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    eviction_set: EvictionSet,
    target_index: int,
    miss_threshold: float,
    repeats: int = 5,
) -> ValidationReport:
    """Fig 5: the eviction appears exactly at the associativity boundary.

    ``target_index`` must be a line *outside* the set's members that maps
    to the same physical set (for page-built sets, the same line offset in
    another page of the color group).  Chasing k members keeps the target
    resident for k < associativity and deterministically evicts it at
    k = associativity -- "evicted consistently after the 16th address",
    establishing LRU without randomization.
    """
    members = list(eviction_set.indices)
    report = ValidationReport(repeats=repeats)
    for count in range(1, len(members) + 1):
        outcome = run_algorithm1(
            runtime,
            process,
            exec_gpu,
            eviction_set.buffer,
            target_index,
            members[:count],
            miss_threshold,
        )
        report.latencies_by_count.append(outcome.second_access_cycles)
        if report.eviction_at is None and outcome.evicted:
            report.eviction_at = count
    for _ in range(repeats):
        if _chase_evicts_target(
            runtime,
            process,
            exec_gpu,
            eviction_set.buffer,
            target_index,
            members,
            miss_threshold,
        ):
            report.full_set_evictions += 1
        if _chase_evicts_target(
            runtime,
            process,
            exec_gpu,
            eviction_set.buffer,
            target_index,
            members[:-1],
            miss_threshold,
        ):
            report.short_set_evictions += 1
    return report


def sets_alias(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    set_a: EvictionSet,
    set_b: EvictionSet,
    miss_threshold: float,
) -> bool:
    """Fig 6 check: do two discovered sets index the same physical set?

    Prime A, walk B, re-probe A: if B displaced A's lines (misses on the
    re-probe), the union exceeds one set's capacity, i.e. they alias.
    """

    def kernel():
        yield ProbeSet(set_a.buffer, set_a.indices)
        yield ProbeSet(set_b.buffer, set_b.indices)
        reprobe = yield ProbeSet(set_a.buffer, set_a.indices)
        return reprobe

    probe = runtime.run_kernel(kernel(), exec_gpu, process, name="alias_test")
    misses = sum(1 for latency in probe.latencies if latency > miss_threshold)
    # Aliasing evicts at least |B| of A's lines; distinct sets evict none.
    return misses >= max(1, len(set_b.indices) // 2)


def deduplicate_eviction_sets(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    sets: Sequence[EvictionSet],
    miss_threshold: float,
) -> List[EvictionSet]:
    """Drop sets aliasing an earlier one ("eliminate the newly discovered
    eviction set from consideration", Section III-B)."""
    kept: List[EvictionSet] = []
    for candidate in sets:
        if any(
            sets_alias(runtime, process, exec_gpu, kept_set, candidate, miss_threshold)
            for kept_set in kept
        ):
            continue
        kept.append(candidate)
    return kept


# ----------------------------------------------------------------------
# Bulk construction via page coloring
# ----------------------------------------------------------------------
@dataclass
class PageColoring:
    """Attacker-discovered grouping of buffer pages by cache color.

    Pages in one group conflict line-for-line: their k-th lines all map to
    the same physical set (the paper's "data belonging to a page is indexed
    consecutively in the cache").
    """

    buffer: DeviceBuffer
    groups: List[List[int]] = field(default_factory=list)  # page numbers
    words_per_page: int = 0
    words_per_line: int = 0

    @property
    def lines_per_page(self) -> int:
        return self.words_per_page // self.words_per_line

    def usable_sets(self) -> int:
        """Distinct cache sets coverable with full eviction sets."""
        return self.lines_per_page * len(self.groups)


def discover_page_coloring(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    buffer: DeviceBuffer,
    associativity: int,
    miss_threshold: float,
    max_groups: Optional[int] = None,
) -> PageColoring:
    """Group the buffer's pages into cache colors using only timing.

    For each yet-ungrouped page: reduce the other pages' first lines to a
    minimal eviction set for this page's first line, then classify every
    remaining page with a single chase test (target + assoc-1 knowns +
    candidate: eviction iff the candidate shares the color).
    """
    spec = runtime.system.spec.gpu
    words_per_page = spec.page_size // 8
    words_per_line = spec.cache.line_size // 8
    num_pages = buffer.num_words // words_per_page

    def rep(page: int) -> int:
        return page * words_per_page

    coloring = PageColoring(
        buffer=buffer,
        words_per_page=words_per_page,
        words_per_line=words_per_line,
    )
    ungrouped = list(range(num_pages))
    while ungrouped:
        if max_groups is not None and len(coloring.groups) >= max_groups:
            break
        target_page = ungrouped[0]
        others = [rep(p) for p in ungrouped[1:]]
        if not _chase_evicts_target(
            runtime, process, exec_gpu, buffer, rep(target_page), others, miss_threshold
        ):
            # Not enough same-color companions left to build a full set.
            ungrouped.pop(0)
            continue
        minimal = reduce_to_minimal(
            runtime,
            process,
            exec_gpu,
            buffer,
            rep(target_page),
            others,
            associativity,
            miss_threshold,
        )
        group_pages = [target_page] + [index // words_per_page for index in minimal]
        known = minimal[: associativity - 1]
        for page in ungrouped:
            if page in group_pages:
                continue
            if _chase_evicts_target(
                runtime,
                process,
                exec_gpu,
                buffer,
                rep(target_page),
                known + [rep(page)],
                miss_threshold,
            ):
                group_pages.append(page)
        coloring.groups.append(sorted(group_pages))
        grouped = set(group_pages)
        ungrouped = [p for p in ungrouped if p not in grouped]
    if not coloring.groups:
        raise EvictionSetError(
            "no page color has enough pages to form an eviction set; "
            "allocate a larger buffer"
        )
    return coloring


# ----------------------------------------------------------------------
# Self-healing: rot detection and in-place repair (see repro.chaos)
# ----------------------------------------------------------------------
class EvictionSetHealth:
    """Sustained unexpected-hit detector over a family of eviction sets.

    A set *rots* when the driver silently migrates one of its pages to a
    frame of a different cache color (:mod:`repro.chaos` page-remap
    faults): the set then holds fewer than ``associativity`` same-set
    lines, primes stop evicting, and the observer sees hits where misses
    were expected.  One noisy frame must not trigger a (costly)
    rediscovery, so the monitor tracks an EWMA of each set's observed
    miss fraction and flags a set only after ``patience`` consecutive
    observations below ``min_miss_fraction``.
    """

    def __init__(
        self,
        num_sets: int,
        min_miss_fraction: float = 0.08,
        alpha: float = 0.5,
        patience: int = 2,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.min_miss_fraction = float(min_miss_fraction)
        self.alpha = float(alpha)
        self.patience = int(patience)
        self._ewma: List[Optional[float]] = [None] * num_sets
        self._strikes: List[int] = [0] * num_sets
        #: Completed repair count per set (the repair-scope tests pin this).
        self.repairs: List[int] = [0] * num_sets

    def observe(self, set_index: int, miss_fraction: float) -> bool:
        """Fold in one observation; returns True when the set is rotted."""
        previous = self._ewma[set_index]
        if previous is None:
            current = float(miss_fraction)
        else:
            current = previous + self.alpha * (miss_fraction - previous)
        self._ewma[set_index] = current
        if current < self.min_miss_fraction:
            self._strikes[set_index] += 1
        else:
            self._strikes[set_index] = 0
        return self._strikes[set_index] >= self.patience

    def observe_trace(self, set_index: int, trace, threshold: float) -> bool:
        """Observe a spy trace: miss fraction of its binarized samples."""
        if not trace.latencies:
            return self.observe(set_index, 0.0)
        misses = sum(1 for lat in trace.latencies if lat > threshold)
        return self.observe(set_index, misses / len(trace.latencies))

    def rotted(self) -> List[int]:
        """Indices currently past the patience budget, in set order."""
        return [
            index
            for index, strikes in enumerate(self._strikes)
            if strikes >= self.patience
        ]

    def mark_repaired(self, set_index: int) -> None:
        """Reset a set's state after a successful repair."""
        self._ewma[set_index] = None
        self._strikes[set_index] = 0
        self.repairs[set_index] += 1


def _spare_targets(coloring: PageColoring, ev_set: EvictionSet) -> List[int]:
    """Same-color-group word indices outside the set (its origin offset)."""
    if ev_set.origin is None:
        raise EvictionSetError(
            "cannot derive spare targets: eviction set has no origin "
            "(page-coloring provenance required for health checks)"
        )
    group, offset = ev_set.origin
    member_pages = {index // coloring.words_per_page for index in ev_set.indices}
    word = offset * coloring.words_per_line
    return [
        page * coloring.words_per_page + word
        for page in coloring.groups[group]
        if page not in member_pages
    ]


def verify_set_health(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    ev_set: EvictionSet,
    coloring: PageColoring,
    miss_threshold: float,
) -> bool:
    """Active probe: does the set still evict a same-color spare line?

    A healthy set's chase displaces any line of its physical set; a set
    that lost a member to page migration leaves the spare resident.  The
    spares come from the set's page-coloring provenance -- but a spare
    page can *itself* have been migrated away, so a single resident spare
    is not proof of rot: the verdict is healthy as soon as any spare gets
    evicted (usually the first, costing one conflict-test kernel), rotted
    only when every spare stays resident.
    """
    spares = _spare_targets(coloring, ev_set)
    if not spares:
        raise EvictionSetError(
            f"no spare page left in color group {ev_set.origin[0]} to "
            f"verify set {ev_set.set_id} against"
        )
    return any(
        _chase_evicts_target(
            runtime,
            process,
            exec_gpu,
            ev_set.buffer,
            spare,
            ev_set.indices,
            miss_threshold,
        )
        for spare in spares
    )


def repair_eviction_set(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    ev_set: EvictionSet,
    coloring: PageColoring,
    associativity: int,
    miss_threshold: float,
    max_retries: int = 3,
    backoff_cycles: float = 4000.0,
) -> EvictionSet:
    """Rebuild a rotted set in place, touching nothing else.

    The repair pool is the set's own color group at its origin line
    offset -- every page that *was* the right color plus the spares the
    group kept in reserve -- reduced back to ``associativity`` members
    with the group-testing pass.  A page migrated to a different color
    simply fails the reduction's conflict tests and drops out.  Each
    failed attempt (noise, a fault landing mid-repair) backs off
    exponentially before retrying a different spare target; after
    ``max_retries`` failures the set is declared unrecoverable with
    :class:`repro.errors.EvictionSetStaleError`.
    """
    if ev_set.origin is None:
        raise EvictionSetError(
            f"set {ev_set.set_id} has no page-coloring origin; "
            "only page-built sets are repairable in place"
        )
    group, offset = ev_set.origin
    word = offset * coloring.words_per_line
    pool = [
        page * coloring.words_per_page + word for page in coloring.groups[group]
    ]
    spares = _spare_targets(coloring, ev_set) or pool[:1]
    last_error: Optional[EvictionSetError] = None
    for attempt in range(max_retries):
        target = spares[attempt % len(spares)]
        try:
            members = reduce_to_minimal(
                runtime,
                process,
                exec_gpu,
                ev_set.buffer,
                target,
                [index for index in pool if index != target],
                associativity,
                miss_threshold,
            )
        except EvictionSetError as error:
            last_error = error
            runtime.run_kernel(
                _backoff_kernel(backoff_cycles * (2.0**attempt)),
                exec_gpu,
                process,
                name=f"repair_backoff_{ev_set.set_id}",
            )
            continue
        return EvictionSet(
            buffer=ev_set.buffer,
            indices=tuple(members),
            set_id=ev_set.set_id,
            origin=ev_set.origin,
        )
    raise EvictionSetStaleError(
        f"eviction set {ev_set.set_id} unrecoverable after {max_retries} "
        f"repair attempts (color group {group}, offset {offset}): {last_error}"
    )


def _backoff_kernel(cycles: float):
    yield Sleep(cycles)


def repair_eviction_sets(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    sets: Sequence[EvictionSet],
    coloring: PageColoring,
    associativity: int,
    miss_threshold: float,
    health: Optional[EvictionSetHealth] = None,
    max_retries: int = 3,
) -> List[EvictionSet]:
    """Verify every set and rebuild only the rotted ones.

    Healthy sets are returned untouched (same object), so callers can
    assert repair scope by identity; ``health`` (when given) gets its
    per-set repair counters bumped.
    """
    repaired: List[EvictionSet] = []
    for index, ev_set in enumerate(sets):
        if verify_set_health(
            runtime, process, exec_gpu, ev_set, coloring, miss_threshold
        ):
            repaired.append(ev_set)
            continue
        fresh = repair_eviction_set(
            runtime,
            process,
            exec_gpu,
            ev_set,
            coloring,
            associativity,
            miss_threshold,
            max_retries=max_retries,
        )
        if health is not None:
            health.mark_repaired(index)
        repaired.append(fresh)
    return repaired


def build_eviction_sets(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    buffer: DeviceBuffer,
    num_sets: int,
    associativity: int,
    miss_threshold: float,
    deduplicate: bool = True,
    coloring: Optional[PageColoring] = None,
    spread: bool = False,
) -> List[EvictionSet]:
    """Produce ``num_sets`` eviction sets over distinct physical sets.

    Runs page-color discovery once (or reuses ``coloring``), then emits one
    set per (color group, line offset) -- each a full ``associativity``-
    sized set -- confirming distinctness with the Fig 6 aliasing test on a
    sample of adjacent pairs.

    With ``spread=True`` the sets are distributed evenly over every color
    group and across each page's full line range, sampling the whole cache
    uniformly -- what a memorygram monitor wants ("sampling coverage",
    Section V-B).  The default emits consecutive offsets of the first
    group(s), which maximizes sets per discovered color.
    """
    if coloring is None:
        coloring = discover_page_coloring(
            runtime, process, exec_gpu, buffer, associativity, miss_threshold
        )
    usable_groups = [
        (gi, pages[:associativity])
        for gi, pages in enumerate(coloring.groups)
        if len(pages) >= associativity
    ]
    if not usable_groups:
        raise EvictionSetError("no color group has enough pages for a full set")

    placements: List[Tuple[int, Tuple[int, ...], int]] = []
    lines_per_page = coloring.lines_per_page
    if spread:
        per_group = -(-num_sets // len(usable_groups))
        stride = max(1, lines_per_page // max(1, per_group))
        for rank in range(per_group):
            for group_index, pages in usable_groups:
                offset = (rank * stride) % lines_per_page
                placements.append((group_index, tuple(pages), offset))
    else:
        for group_index, pages in usable_groups:
            for offset in range(lines_per_page):
                placements.append((group_index, tuple(pages), offset))

    sets: List[EvictionSet] = []
    seen = set()
    for group_index, pages, offset in placements:
        if len(sets) >= num_sets:
            break
        if (group_index, offset) in seen:
            continue
        seen.add((group_index, offset))
        word = offset * coloring.words_per_line
        sets.append(
            EvictionSet(
                buffer=buffer,
                indices=tuple(
                    page * coloring.words_per_page + word for page in pages
                ),
                set_id=len(sets),
                origin=(group_index, offset),
            )
        )
    if len(sets) < num_sets:
        raise EvictionSetError(
            f"buffer only covers {len(sets)} distinct sets; requested {num_sets}"
        )
    if deduplicate and len(sets) >= 2:
        # Sample-check distinctness: full pairwise Fig 6 testing is O(n^2);
        # verify a handful of adjacent pairs (the only plausible aliases).
        sample = sets[: min(len(sets), 8)]
        kept = deduplicate_eviction_sets(
            runtime, process, exec_gpu, sample, miss_threshold
        )
        if len(kept) != len(sample):
            raise EvictionSetError(
                "page-built eviction sets alias each other; "
                "index hashing may be enabled on this cache"
            )
    return sets
