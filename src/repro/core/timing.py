"""Section III-A: timing characterization of local and remote accesses.

The microbenchmark mirrors the paper's: allocate a buffer, walk it at a
128-byte stride with ``__ldcg`` loads (cold pass = DRAM time, warm pass =
L2 time), record each latency in shared memory so the measurement itself
creates no L2 traffic.  Run once with a local buffer and once with a buffer
homed on a peer GPU reached over NVLink.

The result is the four timing clusters of Fig 4 and, derived from them, the
hit/miss *thresholds* every later attack step uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..runtime.api import Runtime
from ..runtime.kernel import line_stride_indices
from ..sim.ops import Access, Fence, SharedStore
from ..sim.process import Process

__all__ = [
    "RollingThreshold",
    "TimingThresholds",
    "TimingReport",
    "characterize_timing",
    "measure_access_classes",
]

#: Access-class labels in the order they appear left-to-right in Fig 4.
CLASSES = ("local_hit", "local_miss", "remote_hit", "remote_miss")


@dataclass(frozen=True)
class TimingThresholds:
    """Decision thresholds derived from the four timing clusters.

    Carries the calibrated cluster means; ``local`` / ``remote`` are the
    midpoint thresholds (local L2 hit vs local DRAM, remote L2 hit vs
    remote DRAM).  The spy probing a remote L2 uses ``remote``: below =
    hit ('0'), above = miss ('1').  The cluster means also let decoders
    re-anchor the threshold when load shifts both clusters upward (see
    :func:`repro.core.covert.spy.adaptive_threshold`).
    """

    local_hit_mean: float
    local_miss_mean: float
    remote_hit_mean: float
    remote_miss_mean: float

    @property
    def local(self) -> float:
        return 0.5 * (self.local_hit_mean + self.local_miss_mean)

    @property
    def remote(self) -> float:
        return 0.5 * (self.remote_hit_mean + self.remote_miss_mean)

    @property
    def remote_half_gap(self) -> float:
        """Half the calibrated remote miss-hit separation."""
        return 0.5 * (self.remote_miss_mean - self.remote_hit_mean)

    def is_remote_miss(self, cycles: float) -> bool:
        return cycles > self.remote

    def is_local_miss(self, cycles: float) -> bool:
        return cycles > self.local


class RollingThreshold:
    """EWMA-tracked hit/miss threshold that survives mid-trace drift.

    :func:`repro.core.covert.spy.adaptive_threshold` re-anchors once per
    trace, which is enough when load is stationary across the trace.  A
    DVFS excursion (see :mod:`repro.chaos`) rescales latencies *mid*
    trace: a single per-trace percentile then splits the difference and
    misclassifies both halves.  This tracker instead follows the hit
    level with an exponentially weighted moving average -- seeded from
    the 25th percentile of the warm-up window, updated only on samples it
    classifies as hits (misses say nothing about the hit level) -- and
    keeps the decision threshold ``half_gap`` above the *current* hit
    level.  ``drift`` exposes how far the hit level has wandered from its
    seed, which the resilient channel uses to flag clock excursions.
    """

    def __init__(
        self,
        half_gap: float,
        alpha: float = 0.08,
        warmup: int = 12,
    ) -> None:
        if half_gap <= 0:
            raise ValueError("half_gap must be positive")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.half_gap = float(half_gap)
        self.alpha = float(alpha)
        self.warmup = int(warmup)
        self._hit_level: float = 0.0
        self._baseline: float = 0.0
        self._window: List[float] = []
        self._seeded = False

    @property
    def seeded(self) -> bool:
        return self._seeded

    @property
    def hit_level(self) -> float:
        """Current hit-cluster estimate (0.0 until seeded)."""
        return self._hit_level

    @property
    def threshold(self) -> float:
        """Current decision boundary: hit level + half the physical gap."""
        return self._hit_level + self.half_gap

    @property
    def drift(self) -> float:
        """Relative hit-level drift since seeding (0.0 until seeded)."""
        if not self._seeded or self._baseline == 0.0:
            return 0.0
        return (self._hit_level - self._baseline) / self._baseline

    def _seed(self) -> None:
        ordered = sorted(self._window)
        self._hit_level = ordered[len(ordered) // 4]
        self._baseline = self._hit_level
        self._seeded = True

    def update(self, latency: float) -> int:
        """Fold in one sample; returns its classification (1 = miss).

        Warm-up samples are classified retroactively against the seeded
        level once the window fills, and conservatively as hits before
        that (cold-start probes are anchored away by the decoder anyway).
        """
        if not self._seeded:
            self._window.append(float(latency))
            if len(self._window) >= self.warmup:
                self._seed()
            return 0
        if latency > self.threshold:
            return 1
        self._hit_level += self.alpha * (latency - self._hit_level)
        return 0

    def classify(self, latencies: Sequence[float]) -> List[int]:
        """Binarize a whole trace with the rolling threshold.

        The warm-up prefix is re-classified against the seeded level so
        the output has the same length and semantics as
        :meth:`repro.core.covert.spy.SpyTrace.binarized`.
        """
        bits = [self.update(lat) for lat in latencies]
        if self._seeded:
            prefix = min(self.warmup, len(latencies))
            for index in range(prefix):
                bits[index] = 1 if latencies[index] > self._baseline + self.half_gap else 0
        return bits


@dataclass
class TimingReport:
    """Measured latency samples per access class (the data behind Fig 4)."""

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def mean(self, cls: str) -> float:
        return float(np.mean(self.samples[cls]))

    def std(self, cls: str) -> float:
        return float(np.std(self.samples[cls]))

    def thresholds(self) -> TimingThresholds:
        """Decision thresholds (cluster midpoints) from the measured means."""
        return TimingThresholds(
            local_hit_mean=self.mean("local_hit"),
            local_miss_mean=self.mean("local_miss"),
            remote_hit_mean=self.mean("remote_hit"),
            remote_miss_mean=self.mean("remote_miss"),
        )

    def clusters_are_separated(self) -> bool:
        """True when the four clusters are disjoint at +/-3 sigma."""
        ordered = [self.mean(c) for c in CLASSES]
        if ordered != sorted(ordered):
            return False
        for lo, hi in zip(CLASSES, CLASSES[1:]):
            if self.mean(lo) + 3 * self.std(lo) >= self.mean(hi) - 3 * self.std(hi):
                return False
        return True

    def histogram(self, bins: int = 60):
        """(counts, edges) over all samples pooled -- the Fig 4 histogram."""
        pooled = np.concatenate([np.asarray(v) for v in self.samples.values()])
        return np.histogram(pooled, bins=bins)

    def summary(self) -> str:
        lines = ["access class      mean (cyc)   std"]
        for cls in CLASSES:
            lines.append(f"{cls:<16} {self.mean(cls):>10.1f} {self.std(cls):>6.1f}")
        thr = self.thresholds()
        lines.append(
            f"thresholds: local hit/miss @ {thr.local:.0f} cyc, "
            f"remote hit/miss @ {thr.remote:.0f} cyc"
        )
        return "\n".join(lines)


def _timing_kernel(buffer, indices, shared_times, record_base: int):
    """Walk ``indices`` once, recording each __ldcg latency in shared memory."""
    for slot, index in enumerate(indices):
        result = yield Access(buffer, index)
        yield Fence()
        yield SharedStore(shared_times, record_base + slot, result.latency)


def measure_access_classes(
    runtime: Runtime,
    process: Process,
    local_gpu: int,
    remote_gpu: int,
    num_accesses: int = 48,
) -> TimingReport:
    """Measure all four access classes with the paper's microbenchmark.

    ``local_gpu`` hosts the measuring kernel; buffers are allocated on
    ``local_gpu`` (local classes) and on ``remote_gpu`` (remote classes,
    reached via peer access over NVLink).
    """
    runtime.enable_peer_access(process, local_gpu, remote_gpu)
    line = runtime.system.spec.gpu.cache.line_size
    indices = line_stride_indices(num_accesses, line)
    shared = process.shared_buffer("timing", 4 * num_accesses)

    report = TimingReport(samples={cls: [] for cls in CLASSES})
    plan = [
        ("local", local_gpu, 0),
        ("remote", remote_gpu, 2 * num_accesses),
    ]
    for label, home, base in plan:
        buf = runtime.malloc_lines(process, home, num_accesses, name=f"timing_{label}")
        # Cold pass: every access misses (DRAM time).
        runtime.run_kernel(
            _timing_kernel(buf, indices, shared, base),
            local_gpu,
            process,
            name=f"timing_cold_{label}",
        )
        # Warm pass: every access hits the (home) L2.
        runtime.run_kernel(
            _timing_kernel(buf, indices, shared, base + num_accesses),
            local_gpu,
            process,
            name=f"timing_warm_{label}",
        )
        cold = shared.data[base : base + num_accesses]
        warm = shared.data[base + num_accesses : base + 2 * num_accesses]
        report.samples[f"{label}_miss"] = [float(x) for x in cold]
        report.samples[f"{label}_hit"] = [float(x) for x in warm]
        runtime.free(buf)
    return report


def characterize_timing(
    runtime: Runtime,
    local_gpu: int = 0,
    remote_gpu: int = 1,
    num_accesses: int = 48,
    process_name: str = "characterize",
) -> TimingReport:
    """One-call version of the Fig 4 experiment on a fresh process."""
    process = runtime.create_process(process_name)
    return measure_access_classes(
        runtime, process, local_gpu, remote_gpu, num_accesses=num_accesses
    )
