"""Section III-A: timing characterization of local and remote accesses.

The microbenchmark mirrors the paper's: allocate a buffer, walk it at a
128-byte stride with ``__ldcg`` loads (cold pass = DRAM time, warm pass =
L2 time), record each latency in shared memory so the measurement itself
creates no L2 traffic.  Run once with a local buffer and once with a buffer
homed on a peer GPU reached over NVLink.

The result is the four timing clusters of Fig 4 and, derived from them, the
hit/miss *thresholds* every later attack step uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..runtime.api import Runtime
from ..runtime.kernel import line_stride_indices
from ..sim.ops import Access, Fence, SharedStore
from ..sim.process import Process

__all__ = [
    "TimingThresholds",
    "TimingReport",
    "characterize_timing",
    "measure_access_classes",
]

#: Access-class labels in the order they appear left-to-right in Fig 4.
CLASSES = ("local_hit", "local_miss", "remote_hit", "remote_miss")


@dataclass(frozen=True)
class TimingThresholds:
    """Decision thresholds derived from the four timing clusters.

    Carries the calibrated cluster means; ``local`` / ``remote`` are the
    midpoint thresholds (local L2 hit vs local DRAM, remote L2 hit vs
    remote DRAM).  The spy probing a remote L2 uses ``remote``: below =
    hit ('0'), above = miss ('1').  The cluster means also let decoders
    re-anchor the threshold when load shifts both clusters upward (see
    :func:`repro.core.covert.spy.adaptive_threshold`).
    """

    local_hit_mean: float
    local_miss_mean: float
    remote_hit_mean: float
    remote_miss_mean: float

    @property
    def local(self) -> float:
        return 0.5 * (self.local_hit_mean + self.local_miss_mean)

    @property
    def remote(self) -> float:
        return 0.5 * (self.remote_hit_mean + self.remote_miss_mean)

    @property
    def remote_half_gap(self) -> float:
        """Half the calibrated remote miss-hit separation."""
        return 0.5 * (self.remote_miss_mean - self.remote_hit_mean)

    def is_remote_miss(self, cycles: float) -> bool:
        return cycles > self.remote

    def is_local_miss(self, cycles: float) -> bool:
        return cycles > self.local


@dataclass
class TimingReport:
    """Measured latency samples per access class (the data behind Fig 4)."""

    samples: Dict[str, List[float]] = field(default_factory=dict)

    def mean(self, cls: str) -> float:
        return float(np.mean(self.samples[cls]))

    def std(self, cls: str) -> float:
        return float(np.std(self.samples[cls]))

    def thresholds(self) -> TimingThresholds:
        """Decision thresholds (cluster midpoints) from the measured means."""
        return TimingThresholds(
            local_hit_mean=self.mean("local_hit"),
            local_miss_mean=self.mean("local_miss"),
            remote_hit_mean=self.mean("remote_hit"),
            remote_miss_mean=self.mean("remote_miss"),
        )

    def clusters_are_separated(self) -> bool:
        """True when the four clusters are disjoint at +/-3 sigma."""
        ordered = [self.mean(c) for c in CLASSES]
        if ordered != sorted(ordered):
            return False
        for lo, hi in zip(CLASSES, CLASSES[1:]):
            if self.mean(lo) + 3 * self.std(lo) >= self.mean(hi) - 3 * self.std(hi):
                return False
        return True

    def histogram(self, bins: int = 60):
        """(counts, edges) over all samples pooled -- the Fig 4 histogram."""
        pooled = np.concatenate([np.asarray(v) for v in self.samples.values()])
        return np.histogram(pooled, bins=bins)

    def summary(self) -> str:
        lines = ["access class      mean (cyc)   std"]
        for cls in CLASSES:
            lines.append(f"{cls:<16} {self.mean(cls):>10.1f} {self.std(cls):>6.1f}")
        thr = self.thresholds()
        lines.append(
            f"thresholds: local hit/miss @ {thr.local:.0f} cyc, "
            f"remote hit/miss @ {thr.remote:.0f} cyc"
        )
        return "\n".join(lines)


def _timing_kernel(buffer, indices, shared_times, record_base: int):
    """Walk ``indices`` once, recording each __ldcg latency in shared memory."""
    for slot, index in enumerate(indices):
        result = yield Access(buffer, index)
        yield Fence()
        yield SharedStore(shared_times, record_base + slot, result.latency)


def measure_access_classes(
    runtime: Runtime,
    process: Process,
    local_gpu: int,
    remote_gpu: int,
    num_accesses: int = 48,
) -> TimingReport:
    """Measure all four access classes with the paper's microbenchmark.

    ``local_gpu`` hosts the measuring kernel; buffers are allocated on
    ``local_gpu`` (local classes) and on ``remote_gpu`` (remote classes,
    reached via peer access over NVLink).
    """
    runtime.enable_peer_access(process, local_gpu, remote_gpu)
    line = runtime.system.spec.gpu.cache.line_size
    indices = line_stride_indices(num_accesses, line)
    shared = process.shared_buffer("timing", 4 * num_accesses)

    report = TimingReport(samples={cls: [] for cls in CLASSES})
    plan = [
        ("local", local_gpu, 0),
        ("remote", remote_gpu, 2 * num_accesses),
    ]
    for label, home, base in plan:
        buf = runtime.malloc_lines(process, home, num_accesses, name=f"timing_{label}")
        # Cold pass: every access misses (DRAM time).
        runtime.run_kernel(
            _timing_kernel(buf, indices, shared, base),
            local_gpu,
            process,
            name=f"timing_cold_{label}",
        )
        # Warm pass: every access hits the (home) L2.
        runtime.run_kernel(
            _timing_kernel(buf, indices, shared, base + num_accesses),
            local_gpu,
            process,
            name=f"timing_warm_{label}",
        )
        cold = shared.data[base : base + num_accesses]
        warm = shared.data[base + num_accesses : base + 2 * num_accesses]
        report.samples[f"{label}_miss"] = [float(x) for x in cold]
        report.samples[f"{label}_hit"] = [float(x) for x in warm]
        runtime.free(buf)
    return report


def characterize_timing(
    runtime: Runtime,
    local_gpu: int = 0,
    remote_gpu: int = 1,
    num_accesses: int = 48,
    process_name: str = "characterize",
) -> TimingReport:
    """One-call version of the Fig 4 experiment on a fresh process."""
    process = runtime.create_process(process_name)
    return measure_access_classes(
        runtime, process, local_gpu, remote_gpu, num_accesses=num_accesses
    )
