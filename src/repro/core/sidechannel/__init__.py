"""Section V: memorygram side channels across GPUs."""

from .fingerprint import FingerprintAttack, FingerprintResult
from .memorygram import Memorygram
from .model_extraction import (
    ModelExtractionAttack,
    NeuronCountReport,
    count_epochs,
)
from .prober import MemorygramProber
from .scanner import BoxScanner, ScanReport, plan_spy_placement

__all__ = [
    "Memorygram",
    "MemorygramProber",
    "FingerprintAttack",
    "FingerprintResult",
    "ModelExtractionAttack",
    "NeuronCountReport",
    "count_epochs",
    "BoxScanner",
    "ScanReport",
    "plan_spy_placement",
]
