"""Section V-B: extracting MLP hyperparameters from remote memorygrams.

Three leakages are reproduced:

- **Table II** -- the average number of misses over the monitored sets
  grows monotonically with the hidden-layer width (64 -> 512 neurons).
- **Fig 13/14** -- the per-set miss histogram / memorygram intensifies
  with the width.
- **Fig 15** -- epoch boundaries appear as quiet gaps in the temporal
  profile, so the epoch count can be read off the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ...errors import AttackError
from ...runtime.api import Runtime
from ...workloads.mlp import MLPTraining
from .memorygram import Memorygram
from .prober import MemorygramProber

__all__ = [
    "ModelExtractionAttack",
    "NeuronCountReport",
    "count_epochs",
    "infer_hidden_size",
]


@dataclass
class NeuronCountReport:
    """Table II: hidden width -> average misses over monitored sets."""

    rows: List[Tuple[int, float]] = field(default_factory=list)
    grams: Dict[int, Memorygram] = field(default_factory=dict, repr=False)

    def add(self, hidden: int, average_misses: float, gram: Memorygram) -> None:
        self.rows.append((hidden, average_misses))
        self.grams[hidden] = gram

    def is_monotonic(self) -> bool:
        """The paper's separation: more neurons, more misses."""
        values = [avg for _h, avg in sorted(self.rows)]
        return all(a < b for a, b in zip(values, values[1:]))

    def summary(self) -> str:
        lines = ["Number of Neurons | Average Number of Misses"]
        lines.append("-" * 44)
        for hidden, avg in sorted(self.rows):
            lines.append(f"{hidden:>17} | {avg:>24.1f}")
        return "\n".join(lines)


def count_epochs(
    gram: Memorygram,
    quiet_fraction: float = 0.12,
    min_gap_bins: int = 5,
    smooth_bins: int = 3,
) -> int:
    """Fig 15: count training epochs from the temporal activity profile.

    Activity is smoothed, thresholded at ``quiet_fraction`` of its peak,
    and contiguous active segments separated by at least ``min_gap_bins``
    quiet bins are counted as epochs.
    """
    activity = gram.activity_per_bin().astype(np.float64)
    if activity.size == 0 or activity.max() <= 0:
        return 0
    if smooth_bins > 1:
        kernel = np.ones(smooth_bins) / smooth_bins
        activity = np.convolve(activity, kernel, mode="same")
    threshold = quiet_fraction * activity.max()
    active = activity > threshold
    epochs = 0
    quiet_run = min_gap_bins  # so a leading active bin opens a segment
    for flag in active:
        if flag:
            if quiet_run >= min_gap_bins:
                epochs += 1
            quiet_run = 0
        else:
            quiet_run += 1
    return epochs


def infer_hidden_size(
    observed_average: float, reference_rows: Sequence[Tuple[int, float]]
) -> int:
    """Classify an unknown victim against a calibrated Table II."""
    if not reference_rows:
        raise AttackError("empty reference table")
    return min(reference_rows, key=lambda row: abs(row[1] - observed_average))[0]


class ModelExtractionAttack:
    """End-to-end §V-B pipeline."""

    def __init__(
        self,
        runtime: Runtime,
        victim_gpu: int = 0,
        spy_gpu: int = 1,
        num_sets: int = 128,
        bin_cycles: float = 50_000.0,
        batches_per_epoch: int = 2,
        max_duration_cycles: float = 60_000_000.0,
        seed: int = 0,
    ) -> None:
        self.runtime = runtime
        self.prober = MemorygramProber(runtime, victim_gpu, spy_gpu)
        self.num_sets = num_sets
        self.bin_cycles = bin_cycles
        self.batches_per_epoch = batches_per_epoch
        self.max_duration_cycles = max_duration_cycles
        self.seed = seed
        self._ready = False

    def setup(self) -> None:
        self.prober.setup(num_sets=self.num_sets)
        self._ready = True

    # ------------------------------------------------------------------
    def record_training(
        self, hidden_neurons: int, epochs: int = 1, trace_seed: int = 0
    ) -> Memorygram:
        if not self._ready:
            self.setup()
        victim = MLPTraining(
            hidden_neurons=hidden_neurons,
            epochs=epochs,
            batches_per_epoch=self.batches_per_epoch,
            seed=self.seed * 1000 + trace_seed,
        )
        return self.prober.record(
            victim,
            victim_process_name=f"victim_mlp{hidden_neurons}_{trace_seed}",
            bin_cycles=self.bin_cycles,
            max_duration_cycles=self.max_duration_cycles,
        )

    def profile_hidden_sizes(
        self, hidden_sizes: Sequence[int] = (64, 128, 256, 512)
    ) -> NeuronCountReport:
        """The Table II experiment."""
        report = NeuronCountReport()
        for hidden in hidden_sizes:
            gram = self.record_training(hidden)
            report.add(hidden, gram.average_misses_per_set(), gram)
        return report

    def misses_per_set_histogram(
        self, hidden_sizes: Sequence[int] = (64, 128, 256, 512), bins: int = 20
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Fig 13: per-set miss histograms for each hidden width."""
        histograms: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for hidden in hidden_sizes:
            gram = self.record_training(hidden)
            histograms[hidden] = np.histogram(gram.misses_per_set(), bins=bins)
        return histograms

    def extract_epoch_count(self, hidden_neurons: int, true_epochs: int) -> int:
        """The Fig 15 experiment: infer the epoch hyperparameter."""
        gram = self.record_training(hidden_neurons, epochs=true_epochs)
        return count_epochs(gram)
