"""The remote memorygram prober -- the spy side of both §V attacks.

The spy sits on one GPU, allocates its probe buffer on the *victim's* GPU
(Fig 3), derives eviction sets for a block of L2 sets, and then cycles
Prime+Probe over all of them while the victim runs.  Each traversal yields
a per-set miss count that lands in one time bin of the memorygram.

The paper monitors 256 sets for fingerprinting and 1024 for the MLP attack
("to balance sampling coverage and the speed of the attack"); both are a
parameter here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import AttackError
from ...runtime.api import Runtime
from ...sim.epoch import epochify
from ...sim.ops import (
    AccessEpoch,
    Compute,
    EpochBurst,
    EpochOutcome,
    ProbeEpoch,
    ProbeSet,
    ReadClock,
)
from ...sim.process import Process
from ..eviction import (
    EvictionSet,
    EvictionSetHealth,
    PageColoring,
    build_eviction_sets,
    discover_page_coloring,
    repair_eviction_sets,
)
from ..timing import TimingThresholds, measure_access_classes
from ...workloads.base import Workload
from .memorygram import Memorygram

__all__ = ["MemorygramProber", "ProbeSample"]


@dataclass(frozen=True)
class ProbeSample:
    """One probe of one set: the monitored row, start time and per-line
    latencies.  Hit/miss classification happens at assembly time against a
    *trace-adaptive* threshold: the spy's own probe traffic inflates every
    latency under load, so a quiet-box threshold would misread loaded hits
    as misses (the same drift the covert-channel decoder corrects)."""

    row: int
    time: float
    latencies: Tuple[float, ...]


def _prober_block_kernel(
    sets_chunk: Sequence[Tuple[int, EvictionSet]],
    end_time: float,
    samples: List[ProbeSample],
    victim_done: List[object],
    grace_cycles: float,
    sweep_period: float,
    phase_offset: float,
    epoch_probe: bool = True,
) -> Generator:
    """One spy thread block cycling Prime+Probe over its chunk of sets.

    ``sweep_period`` paces the sampling: probing flat-out would sample each
    set several times per memorygram bin for no extra information (the bin
    only keeps a count), so the block idles in dummy compute between sweeps
    -- the "balance sampling coverage and the speed of the attack" knob of
    Section V-B.

    With ``epoch_probe`` a whole sweep is one :class:`ProbeEpoch` (the
    block pipelines its sets back-to-back and syncs once), so the sweep is
    a single batched call against the hardware model; per-set sample
    times come from the epoch's start offsets.  The per-set
    :class:`ProbeSet` path remains for probe buffers spread over multiple
    allocations.
    """
    # Epoch probing needs all monitored sets inside one probe buffer (the
    # prober allocates exactly one); otherwise fall back to per-set probes.
    epoch_ok = epoch_probe and len(
        {id(eviction_set.buffer) for _row, eviction_set in sets_chunk}
    ) == 1
    epoch_buffer = sets_chunk[0][1].buffer if sets_chunk else None
    epoch_sets = tuple(
        tuple(eviction_set.indices) for _row, eviction_set in sets_chunk
    )
    # Warm-up prime: fill every monitored set with spy lines.
    if epoch_ok:
        yield ProbeEpoch(epoch_buffer, epoch_sets, parallel=True)
    else:
        for _row, eviction_set in sets_chunk:
            yield ProbeSet(eviction_set.buffer, eviction_set.indices, parallel=True)
    if phase_offset > 0:
        # Stagger the blocks' sweep phases so their probe bursts do not
        # all hit the NVLink at the same instant.
        yield Compute(phase_offset)
    stop_at: Optional[float] = None
    while True:
        sweep_start = yield ReadClock()
        if sweep_start >= end_time:
            break
        if victim_done and stop_at is None:
            stop_at = sweep_start + grace_cycles
        if stop_at is not None and sweep_start >= stop_at:
            break
        if epoch_ok:
            epoch = yield ProbeEpoch(epoch_buffer, epoch_sets, parallel=True)
            for (row, _eviction_set), start, latencies in zip(
                sets_chunk, epoch.set_starts, epoch.set_latencies
            ):
                samples.append(
                    ProbeSample(
                        row=row, time=sweep_start + start, latencies=latencies
                    )
                )
        else:
            for row, eviction_set in sets_chunk:
                start = yield ReadClock()
                probe = yield ProbeSet(
                    eviction_set.buffer, eviction_set.indices, parallel=True
                )
                samples.append(
                    ProbeSample(row=row, time=start, latencies=tuple(probe.latencies))
                )
        now = yield ReadClock()
        remaining = sweep_period - (now - sweep_start)
        if remaining > 0:
            yield Compute(remaining)


def _prober_block_epoch_kernel(
    sets_chunk: Sequence[Tuple[int, EvictionSet]],
    end_time: float,
    records: List[Tuple[List[int], EpochOutcome]],
    victim_done: List[object],
    grace_cycles: float,
    sweep_period: float,
    phase_offset: float,
) -> Generator:
    """Epoch-native :func:`_prober_block_kernel`: the whole sweep loop is
    one unbounded :class:`AccessEpoch` advanced in bulk by the engine's
    cursor.

    One round = one multi-set burst; ``period`` reproduces the scalar
    loop's pacing arithmetic, ``end_time``/``stop_flag``/``grace_cycles``
    its termination checks, in the same order and at the same clock values
    (the cursor re-checks the stop flag only once foreign events up to the
    round's start have landed, so it observes the victim's completion
    exactly when the scalar loop's ``ReadClock`` would).  The recorded
    outcome lands in ``records`` for columnar assembly.
    """
    burst = EpochBurst(
        sets_chunk[0][1].buffer,
        tuple(tuple(eviction_set.indices) for _row, eviction_set in sets_chunk),
        parallel=True,
    )
    # Warm-up prime: fill every monitored set with spy lines.  The scalar
    # twin's warm-up probe is its first op -- no clock read precedes it.
    yield AccessEpoch((burst,), rounds=1, record=False, round_reads=0)
    if phase_offset > 0:
        yield Compute(phase_offset)
    outcome = yield AccessEpoch(
        (burst,),
        rounds=None,
        period=sweep_period,
        end_time=end_time,
        stop_flag=victim_done,
        grace_cycles=grace_cycles,
        record=True,
    )
    records.append(([row for row, _eviction_set in sets_chunk], outcome))


def _victim_wrapper(kernel: Generator, done_flag: List[object]) -> Generator:
    result = yield from kernel
    done_flag.append(True)
    return result


class MemorygramProber:
    """Spy on ``spy_gpu`` recording memorygrams of activity on ``victim_gpu``."""

    def __init__(
        self,
        runtime: Runtime,
        victim_gpu: int = 0,
        spy_gpu: int = 1,
    ) -> None:
        self.runtime = runtime
        self.victim_gpu = victim_gpu
        self.spy_gpu = spy_gpu
        self.process: Optional[Process] = None
        self.thresholds: Optional[TimingThresholds] = None
        self.eviction_sets: List[EvictionSet] = []
        #: Page-coloring provenance, retained for in-place set repair.
        self._coloring: Optional[PageColoring] = None
        #: Rot monitor over the monitored sets (populated by setup()).
        self.health: Optional[EvictionSetHealth] = None

    # ------------------------------------------------------------------
    def setup(
        self,
        num_sets: int = 256,
        thresholds: Optional[TimingThresholds] = None,
        buffer_pages_per_color: Optional[int] = None,
        cache=None,
    ) -> None:
        """Allocate the probe buffer remotely and derive the eviction sets.

        With an artifact cache active (``cache`` argument, or the ambient
        one from :func:`repro.cache.set_active_cache`) the calibration and
        discovery prologue is checkpointed: a warm run restores the exact
        post-setup simulator state instead of re-deriving it.  Memoization
        only engages on a pristine, untraced runtime -- anything else
        falls through to the plain path below.
        """
        from ...cache import SetupMemo

        runtime = self.runtime
        spec = runtime.system.spec.gpu
        memo = SetupMemo.for_runtime(runtime, cache)
        discovery_key = dict(
            role="memorygram",
            victim_gpu=self.victim_gpu,
            spy_gpu=self.spy_gpu,
            num_sets=num_sets,
            thresholds=repr(thresholds),
            pages=buffer_pages_per_color,
        )
        if memo is not None:
            restored = memo.load("discovery", **discovery_key)
            if restored is not None:
                (
                    self.process,
                    self.thresholds,
                    self.eviction_sets,
                    self._coloring,
                ) = restored
                self.health = EvictionSetHealth(len(self.eviction_sets))
                return
        calibration_key = dict(
            role="memorygram",
            victim_gpu=self.victim_gpu,
            spy_gpu=self.spy_gpu,
        )
        calibrated = (
            memo.load("calibration", **calibration_key)
            if memo is not None and thresholds is None
            else None
        )
        if calibrated is not None:
            self.process, thresholds = calibrated
        else:
            self.process = runtime.create_process("memorygram_spy")
            runtime.enable_peer_access(self.process, self.spy_gpu, self.victim_gpu)
            if thresholds is None:
                report = measure_access_classes(
                    runtime, self.process, self.spy_gpu, self.victim_gpu
                )
                thresholds = report.thresholds()
                if memo is not None:
                    memo.store(
                        "calibration", (self.process, thresholds), **calibration_key
                    )
        self.thresholds = thresholds

        colors = max(1, spec.cache.set_stride // spec.page_size)
        per_color = buffer_pages_per_color
        if per_color is None:
            per_color = 2 * spec.cache.associativity + 2
        buf = runtime.malloc(
            self.process,
            self.victim_gpu,
            colors * per_color * spec.page_size,
            name="memorygram_probe",
        )
        coloring = discover_page_coloring(
            runtime,
            self.process,
            self.spy_gpu,
            buf,
            spec.cache.associativity,
            thresholds.remote,
        )
        self.eviction_sets = build_eviction_sets(
            runtime,
            self.process,
            self.spy_gpu,
            buf,
            num_sets=num_sets,
            associativity=spec.cache.associativity,
            miss_threshold=thresholds.remote,
            deduplicate=False,
            coloring=coloring,
            spread=True,
        )
        self._coloring = coloring
        self.health = EvictionSetHealth(len(self.eviction_sets))
        if memo is not None:
            memo.store(
                "discovery",
                (self.process, self.thresholds, self.eviction_sets, coloring),
                **discovery_key,
            )

    # ------------------------------------------------------------------
    def heal(self, max_retries: int = 3) -> List[int]:
        """Verify every monitored set and rebuild the rotted ones in place.

        Returns the rows that were repaired.  Healthy sets keep their
        exact index tuples (same objects), so a page-migration fault only
        costs the rediscovery of the sets it actually invalidated -- never
        a full re-setup.  Raises
        :class:`repro.errors.EvictionSetStaleError` when a set stays
        unrecoverable past its retry budget.
        """
        if not self.eviction_sets:
            raise AttackError("prober not set up: call setup() first")
        assert self.process is not None and self.thresholds is not None
        assert self._coloring is not None and self.health is not None
        spec = self.runtime.system.spec.gpu
        before = list(self.eviction_sets)
        self.eviction_sets = repair_eviction_sets(
            self.runtime,
            self.process,
            self.spy_gpu,
            before,
            self._coloring,
            spec.cache.associativity,
            self.thresholds.remote,
            health=self.health,
            max_retries=max_retries,
        )
        repaired = [
            row
            for row, (old, new) in enumerate(zip(before, self.eviction_sets))
            if old is not new
        ]
        metrics = getattr(self.runtime, "metrics", None)
        if metrics is not None:
            metrics.count_prober_heals(len(repaired))
        return repaired

    # ------------------------------------------------------------------
    def record(
        self,
        victim: Optional[Workload] = None,
        victim_process_name: str = "victim",
        max_duration_cycles: float = 20_000_000.0,
        bin_cycles: float = 25_000.0,
        sets_per_block: int = 16,
        grace_cycles: float = 100_000.0,
        sweep_period_bins: float = 0.6,
        trim_quiet_tail: bool = True,
        victim_start_delay: float = 50_000.0,
    ) -> Memorygram:
        """Run the victim under observation and return its memorygram.

        The spy's blocks start first (priming their sets), the victim is
        launched after ``victim_start_delay`` cycles, and probing continues
        for ``grace_cycles`` past the victim's completion (or until
        ``max_duration_cycles``).
        """
        if not self.eviction_sets:
            raise AttackError("prober not set up: call setup() first")
        assert self.process is not None and self.thresholds is not None
        runtime = self.runtime
        metrics = getattr(runtime, "metrics", None)
        if metrics is not None:
            metrics.count_prober_record(len(self.eviction_sets))

        start = runtime.engine.now
        end_time = start + max_duration_cycles
        samples: List[ProbeSample] = []
        records: List[Tuple[List[int], EpochOutcome]] = []
        victim_done: List[object] = []

        chunks = [
            list(enumerate(self.eviction_sets))[at : at + sets_per_block]
            for at in range(0, len(self.eviction_sets), sets_per_block)
        ]
        sweep_period = sweep_period_bins * bin_cycles
        # Epoch dispatch (the default) runs each block as one cursor-driven
        # AccessEpoch; the scalar kernel remains as the per-op differential
        # oracle.  Epoch probing needs all of a chunk's sets inside one
        # probe buffer (the prober allocates exactly one).
        use_epochs = getattr(runtime, "epoch_dispatch", True) and all(
            len({id(eviction_set.buffer) for _row, eviction_set in chunk}) == 1
            for chunk in chunks
        )
        for block_index, chunk in enumerate(chunks):
            phase_offset = block_index * sweep_period / max(1, len(chunks))
            if use_epochs:
                kernel = _prober_block_epoch_kernel(
                    chunk,
                    end_time,
                    records,
                    victim_done,
                    grace_cycles,
                    sweep_period,
                    phase_offset=phase_offset,
                )
            else:
                kernel = _prober_block_kernel(
                    chunk,
                    end_time,
                    samples,
                    victim_done,
                    grace_cycles,
                    sweep_period,
                    phase_offset=phase_offset,
                )
            runtime.launch(
                kernel,
                self.spy_gpu,
                self.process,
                name=f"memorygram_block_{block_index}",
                start=start,
            )

        if victim is not None:
            victim_process = runtime.create_process(victim_process_name)
            victim.allocate(runtime, victim_process, self.victim_gpu)
            victim_kernel = victim.kernel()
            if use_epochs:
                # Result-blind trace victims collapse into one unrecorded
                # epoch; kernels yielding richer ops replay verbatim.
                victim_kernel = epochify(victim_kernel)
            runtime.launch(
                _victim_wrapper(victim_kernel, victim_done),
                self.victim_gpu,
                victim_process,
                name=f"victim_{victim.name}",
                start=start + victim_start_delay,
            )
        else:
            victim_done.append(True)  # idle recording: stop after grace

        runtime.synchronize()
        if use_epochs:
            return self._assemble_epochs(
                records, start, bin_cycles, trim_quiet_tail=trim_quiet_tail
            )
        return self._assemble(
            samples, start, bin_cycles, trim_quiet_tail=trim_quiet_tail
        )

    # ------------------------------------------------------------------
    def _adaptive_threshold(self, pooled: np.ndarray) -> float:
        """Trace-adaptive hit/miss boundary from the pooled latencies.

        The spy's own load inflates all latencies, so the hit level is
        re-estimated from this trace's low percentile and the physical DRAM
        gap from the quiet-box calibration sits on top.  The estimate is
        clamped to a band above the calibrated hit mean: below it the trace
        is quiet (use the calibration), far above it the low percentile is
        itself made of misses (a victim saturating every monitored set) and
        must not drag the threshold past the miss cluster.
        """
        assert self.thresholds is not None
        low = float(np.percentile(pooled, 5.0))
        hit_mean = self.thresholds.remote_hit_mean
        half_gap = self.thresholds.remote_half_gap
        hit_level = min(max(low, hit_mean), hit_mean + 1.2 * half_gap)
        return hit_level + half_gap

    def _assemble_epochs(
        self,
        records: Sequence[Tuple[List[int], EpochOutcome]],
        start: float,
        bin_cycles: float,
        trim_quiet_tail: bool,
    ) -> Memorygram:
        """Columnar counterpart of :meth:`_assemble` over epoch outcomes.

        Bit-identical to the scalar path: per-set sample times are the
        same two-float sums (``burst start + set start offset``), the
        pooled percentile sees the same latency multiset, and the bin
        index truncation matches ``int()`` (times never precede
        ``start``).
        """
        live = [
            (rows, outcome)
            for rows, outcome in records
            if outcome.num_recorded
        ]
        if not live:
            raise AttackError("no probe samples recorded")
        pooled = np.concatenate(
            [outcome.latencies.ravel() for _rows, outcome in live]
        )
        threshold = self._adaptive_threshold(pooled)
        block_times = [
            outcome.starts[:, None] + outcome.set_starts[None, :]
            for _rows, outcome in live
        ]
        last = max(float(times.max()) for times in block_times)
        num_bins = int((last - start) / bin_cycles) + 1
        grid = np.zeros((len(self.eviction_sets), num_bins), dtype=np.int64)
        for (rows, outcome), times in zip(live, block_times):
            miss_counts = np.add.reduceat(
                (outcome.latencies > threshold).astype(np.int64),
                outcome.set_offsets,
                axis=1,
            )
            bins = ((times - start) / bin_cycles).astype(np.int64)
            row_grid = np.broadcast_to(
                np.asarray(rows, dtype=np.int64)[None, :], bins.shape
            )
            np.add.at(grid, (row_grid, bins), miss_counts)
        if trim_quiet_tail:
            activity = grid.sum(axis=0)
            alive = np.nonzero(activity > 0)[0]
            if alive.size:
                grid = grid[:, : int(alive[-1]) + 1]
        return Memorygram(data=grid, bin_cycles=bin_cycles, start_time=start)

    def _assemble(
        self,
        samples: Sequence[ProbeSample],
        start: float,
        bin_cycles: float,
        trim_quiet_tail: bool,
    ) -> Memorygram:
        if not samples:
            raise AttackError("no probe samples recorded")
        assert self.thresholds is not None
        pooled = np.concatenate([np.asarray(s.latencies) for s in samples])
        threshold = self._adaptive_threshold(pooled)
        last = max(sample.time for sample in samples)
        num_bins = int((last - start) / bin_cycles) + 1
        grid = np.zeros((len(self.eviction_sets), num_bins), dtype=np.int64)
        for sample in samples:
            bin_index = int((sample.time - start) / bin_cycles)
            grid[sample.row, bin_index] += int(
                sum(1 for lat in sample.latencies if lat > threshold)
            )
        if trim_quiet_tail:
            activity = grid.sum(axis=0)
            live = np.nonzero(activity > 0)[0]
            if live.size:
                grid = grid[:, : int(live[-1]) + 1]
        return Memorygram(data=grid, bin_cycles=bin_cycles, start_time=start)
