"""The memorygram: per-set cache miss activity over time (Fig 11/14/15).

A memorygram is a matrix ``data[set, time_bin]`` of miss counts observed by
the remote spy while it Prime+Probes a block of L2 sets.  It is the raw
material of both §V attacks: the application fingerprint (the whole image)
and the model-extraction statistics (per-set totals, temporal structure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["Memorygram"]


@dataclass
class Memorygram:
    """Miss-count matrix plus the probing geometry that produced it."""

    #: (num_sets, num_bins) int matrix of observed misses.
    data: np.ndarray
    #: Width of one time bin, in cycles.
    bin_cycles: float
    #: Simulation time of bin 0's left edge.
    start_time: float

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        if self.data.ndim != 2:
            raise ValueError("memorygram data must be 2-D (sets x time)")

    # ------------------------------------------------------------------
    @property
    def num_sets(self) -> int:
        return int(self.data.shape[0])

    @property
    def num_bins(self) -> int:
        return int(self.data.shape[1])

    @property
    def duration_cycles(self) -> float:
        return self.num_bins * self.bin_cycles

    def total_misses(self) -> int:
        return int(self.data.sum())

    def misses_per_set(self) -> np.ndarray:
        """Per-set totals (the Fig 13 histogram input / Table II numerator)."""
        return self.data.sum(axis=1)

    def average_misses_per_set(self) -> float:
        """Table II's statistic: mean of the per-set miss totals."""
        return float(self.misses_per_set().mean())

    def activity_per_bin(self) -> np.ndarray:
        """Total misses per time bin (the Fig 15 temporal profile)."""
        return self.data.sum(axis=0)

    # ------------------------------------------------------------------
    def as_image(self, shape=(32, 32), log_scale: bool = True) -> np.ndarray:
        """Downsample to a fixed-size float image in [0, 1].

        This is the input representation for the fingerprint classifier
        (the paper trains an image classifier on memorygram pictures).
        """
        rows, cols = shape
        grid = self.data.astype(np.float64)
        grid = _block_reduce(grid, rows, axis=0)
        grid = _block_reduce(grid, cols, axis=1)
        if log_scale:
            grid = np.log1p(grid)
        top = grid.max()
        if top > 0:
            grid = grid / top
        return grid

    def to_ascii(self, width: int = 64, height: int = 16) -> str:
        """Terminal rendering (stand-in for the paper's figure images)."""
        image = self.as_image((height, width), log_scale=True)
        shades = " .:-=+*#%@"
        lines: List[str] = []
        for row in image:
            lines.append(
                "".join(shades[min(int(v * (len(shades) - 1)), len(shades) - 1)] for v in row)
            )
        return "\n".join(lines)


def _block_reduce(grid: np.ndarray, target: int, axis: int) -> np.ndarray:
    """Mean-pool ``grid`` down to ``target`` entries along ``axis``."""
    size = grid.shape[axis]
    if size == target:
        return grid
    if size < target:
        # Repeat-pad small inputs up to the target.
        reps = -(-target // size)
        grid = np.repeat(grid, reps, axis=axis)
        size = grid.shape[axis]
    edges = np.linspace(0, size, target + 1, dtype=int)
    chunks = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        sl = [slice(None)] * grid.ndim
        sl[axis] = slice(lo, max(hi, lo + 1))
        chunks.append(grid[tuple(sl)].mean(axis=axis, keepdims=True))
    return np.concatenate(chunks, axis=axis)
