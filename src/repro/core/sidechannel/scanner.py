"""Box-wide victim location -- the paper's proposed first-step attack.

Section V-A: the fingerprinting attack "can be used to identify and reverse
engineer the scheduling of applications on a multi-GPU system (simply by
spying on all other GPUs in a GPU-box), and identify a target GPU that is
running a specific victim application".

A single spy can only probe its direct NVLink neighbours (peer access fails
otherwise), so :class:`BoxScanner` first solves a small coverage problem --
pick spy GPUs whose neighbourhoods cover every other GPU -- then sweeps the
box: a short memorygram per GPU classifies it as idle or active, and an
optional fingerprint model names the application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...errors import AttackError
from ...runtime.api import Runtime
from ...workloads.base import Workload
from .memorygram import Memorygram
from .prober import MemorygramProber

__all__ = ["BoxScanner", "ScanReport", "plan_spy_placement"]


def plan_spy_placement(runtime: Runtime) -> Dict[int, List[int]]:
    """Choose spy GPUs whose NVLink neighbourhoods cover the whole box.

    Greedy set cover over the topology; returns {spy_gpu: [targets...]}.
    On the DGX-1 cube-mesh two spies (one per quad) cover all eight GPUs.
    """
    topology = runtime.system.topology
    num_gpus = runtime.num_gpus
    uncovered = set(range(num_gpus))
    placement: Dict[int, List[int]] = {}
    while uncovered:
        best_gpu, best_cover = None, []
        for gpu in range(num_gpus):
            if gpu in placement:
                continue
            cover = [t for t in topology.neighbors(gpu) if t in uncovered]
            if len(cover) > len(best_cover):
                best_gpu, best_cover = gpu, cover
        if best_gpu is None or not best_cover:
            raise AttackError(
                f"cannot cover GPUs {sorted(uncovered)}: no NVLink neighbours"
            )
        placement[best_gpu] = sorted(best_cover)
        # Note: a spy cannot Prime+Probe its own GPU through this remote
        # channel, so its own GPU stays uncovered until a *neighbour* spy
        # takes it.
        uncovered -= set(best_cover)
    return placement


@dataclass
class ScanReport:
    """Per-GPU activity observed across the box."""

    #: gpu -> (observed total misses, memorygram)
    observations: Dict[int, Tuple[int, Memorygram]] = field(default_factory=dict)
    #: gpu -> True when activity exceeded the idle floor.
    active: Dict[int, bool] = field(default_factory=dict)
    #: gpu -> classified application name (when a classifier was provided).
    identified: Dict[int, str] = field(default_factory=dict)

    def active_gpus(self) -> List[int]:
        return sorted(gpu for gpu, flag in self.active.items() if flag)

    def summary(self) -> str:
        lines = ["gpu  active  misses  identified"]
        for gpu in sorted(self.observations):
            misses, _gram = self.observations[gpu]
            label = self.identified.get(gpu, "-")
            lines.append(
                f"{gpu:>3}  {str(self.active[gpu]):<6}  {misses:>6}  {label}"
            )
        return "\n".join(lines)


class BoxScanner:
    """Sweep every GPU of the box for victim activity."""

    def __init__(
        self,
        runtime: Runtime,
        num_sets: int = 32,
        bin_cycles: float = 25_000.0,
        idle_miss_floor: int = 64,
    ) -> None:
        self.runtime = runtime
        self.num_sets = num_sets
        self.bin_cycles = bin_cycles
        self.idle_miss_floor = idle_miss_floor
        self.placement = plan_spy_placement(runtime)
        self._probers: Dict[Tuple[int, int], MemorygramProber] = {}

    def _prober_for(self, spy_gpu: int, target_gpu: int) -> MemorygramProber:
        key = (spy_gpu, target_gpu)
        if key not in self._probers:
            prober = MemorygramProber(
                self.runtime, victim_gpu=target_gpu, spy_gpu=spy_gpu
            )
            prober.setup(num_sets=self.num_sets)
            self._probers[key] = prober
        return self._probers[key]

    def scan(
        self,
        victims: Optional[Dict[int, Workload]] = None,
        observation_cycles: float = 1_500_000.0,
        classifier=None,
        feature_fn=None,
    ) -> ScanReport:
        """Observe every covered GPU once.

        ``victims`` optionally launches workloads on chosen GPUs for the
        duration of their observation (the scan itself works against any
        concurrently running applications).  With ``classifier`` (and the
        matching ``feature_fn``) active GPUs are also fingerprinted.
        """
        report = ScanReport()
        victims = victims or {}
        for spy_gpu, targets in self.placement.items():
            for target in targets:
                prober = self._prober_for(spy_gpu, target)
                gram = prober.record(
                    victim=victims.get(target),
                    victim_process_name=f"scan_victim_gpu{target}",
                    max_duration_cycles=observation_cycles,
                    bin_cycles=self.bin_cycles,
                    grace_cycles=2 * self.bin_cycles,
                )
                misses = gram.total_misses()
                report.observations[target] = (misses, gram)
                report.active[target] = misses > self.idle_miss_floor
                if classifier is not None and report.active[target]:
                    features = feature_fn(gram)
                    report.identified[target] = str(
                        classifier.predict(features.reshape(1, -1))[0]
                    )
        return report
