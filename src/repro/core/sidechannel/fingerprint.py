"""Section V-A: application fingerprinting from remote memorygrams.

The spy records memorygrams while each of the six victim applications runs
on the remote GPU, trains a classifier on the images, and identifies the
application from a fresh trace.  The paper collects 1500 traces per app
and reports 99.91 % accuracy (Fig 12); trace counts here are a parameter
so benches stay fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...analysis.classifier import MLPClassifier
from ...analysis.features import memorygram_features
from ...analysis.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    render_confusion,
)
from ...errors import AttackError
from ...runtime.api import Runtime
from ...workloads.registry import make_workload, workload_names
from .memorygram import Memorygram
from .prober import MemorygramProber

__all__ = ["FingerprintAttack", "FingerprintResult", "FingerprintDataset"]


@dataclass
class FingerprintDataset:
    """Collected memorygram features with labels."""

    X: np.ndarray
    y: np.ndarray
    grams: List[Memorygram] = field(default_factory=list, repr=False)

    def split(
        self, train_fraction: float, seed: int = 0
    ) -> Tuple["FingerprintDataset", "FingerprintDataset"]:
        """Stratified train/test split."""
        rng = np.random.default_rng(seed)
        train_idx: List[int] = []
        test_idx: List[int] = []
        for label in np.unique(self.y):
            members = np.nonzero(self.y == label)[0]
            rng.shuffle(members)
            cut = max(1, int(round(train_fraction * len(members))))
            if cut >= len(members):
                cut = len(members) - 1
            train_idx.extend(members[:cut])
            test_idx.extend(members[cut:])
        make = lambda idx: FingerprintDataset(  # noqa: E731
            X=self.X[idx], y=self.y[idx]
        )
        return make(np.array(train_idx)), make(np.array(test_idx))


@dataclass
class FingerprintResult:
    """Fig 12: accuracy + confusion matrix over the application set."""

    labels: List[str]
    accuracy: float
    confusion: np.ndarray
    report: str

    def summary(self) -> str:
        lines = [f"fingerprint accuracy: {self.accuracy * 100:.2f}%", ""]
        lines.append(render_confusion(self.confusion, self.labels))
        lines.append("")
        lines.append(self.report)
        return "\n".join(lines)


class FingerprintAttack:
    """End-to-end §V-A pipeline: collect, train, evaluate."""

    def __init__(
        self,
        runtime: Runtime,
        victim_gpu: int = 0,
        spy_gpu: int = 1,
        num_sets: int = 128,
        bin_cycles: float = 25_000.0,
        workload_scale: float = 0.25,
        seed: int = 0,
    ) -> None:
        self.runtime = runtime
        self.prober = MemorygramProber(runtime, victim_gpu, spy_gpu)
        self.num_sets = num_sets
        self.bin_cycles = bin_cycles
        self.workload_scale = workload_scale
        self.seed = seed
        self._ready = False

    def setup(self) -> None:
        self.prober.setup(num_sets=self.num_sets)
        self._ready = True

    # ------------------------------------------------------------------
    def record_app(self, app: str, trace_seed: int = 0) -> Memorygram:
        """One memorygram of one victim application (a Fig 11 panel)."""
        if not self._ready:
            self.setup()
        victim = make_workload(app, scale=self.workload_scale, seed=trace_seed)
        return self.prober.record(
            victim,
            victim_process_name=f"victim_{app}_{trace_seed}",
            bin_cycles=self.bin_cycles,
        )

    def collect_dataset(
        self,
        apps: Optional[Sequence[str]] = None,
        traces_per_app: int = 12,
        keep_grams: bool = False,
    ) -> FingerprintDataset:
        apps = list(apps) if apps is not None else workload_names()
        features: List[np.ndarray] = []
        labels: List[str] = []
        grams: List[Memorygram] = []
        for app in apps:
            for trace in range(traces_per_app):
                gram = self.record_app(app, trace_seed=self.seed * 1000 + trace)
                features.append(memorygram_features(gram))
                labels.append(app)
                if keep_grams:
                    grams.append(gram)
        return FingerprintDataset(
            X=np.stack(features), y=np.asarray(labels), grams=grams
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        dataset: FingerprintDataset,
        train_fraction: float = 0.5,
        classifier: Optional[MLPClassifier] = None,
    ) -> FingerprintResult:
        if len(np.unique(dataset.y)) < 2:
            raise AttackError("need at least two application classes")
        train, test = dataset.split(train_fraction, seed=self.seed)
        # Mirror the paper's split: training and validation sets of equal
        # standing, with the held-out remainder used only for the report.
        fit_part, val_part = train.split(0.75, seed=self.seed + 1)
        model = classifier or MLPClassifier(hidden=48, epochs=300, seed=self.seed)
        model.fit(fit_part.X, fit_part.y, X_val=val_part.X, y_val=val_part.y)
        predictions = model.predict(test.X)
        labels = sorted(np.unique(dataset.y))
        return FingerprintResult(
            labels=[str(label) for label in labels],
            accuracy=accuracy_score(test.y, predictions),
            confusion=confusion_matrix(test.y, predictions, labels),
            report=classification_report(test.y, predictions, labels),
        )

    def run(
        self,
        apps: Optional[Sequence[str]] = None,
        traces_per_app: int = 12,
        train_fraction: float = 0.5,
    ) -> FingerprintResult:
        """Collect + evaluate in one call (the Fig 12 experiment)."""
        dataset = self.collect_dataset(apps, traces_per_app=traces_per_app)
        return self.evaluate(dataset, train_fraction=train_fraction)
