"""The paper's contribution: reverse engineering, eviction sets, attacks."""

from .alignment import AlignmentResult, align_eviction_sets
from .eviction import (
    EvictionSet,
    build_eviction_sets,
    deduplicate_eviction_sets,
    find_eviction_set,
    validate_eviction_set,
)
from .reverse_engineering import CacheArchitectureReport, reverse_engineer_cache
from .timing import TimingReport, TimingThresholds, characterize_timing

__all__ = [
    "characterize_timing",
    "TimingReport",
    "TimingThresholds",
    "reverse_engineer_cache",
    "CacheArchitectureReport",
    "EvictionSet",
    "find_eviction_set",
    "build_eviction_sets",
    "deduplicate_eviction_sets",
    "validate_eviction_set",
    "align_eviction_sets",
    "AlignmentResult",
]
