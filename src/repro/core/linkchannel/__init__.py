"""NVLink fabric contention channels (link probes, covert + side channel).

The paper's attacks contend on the remote L2; its follow-ups (NVBleed,
arXiv 2503.17847; Beyond the Bridge, arXiv 2404.03877) show the NVLink
fabric *itself* is a timing channel: transfers serialize on link lanes, so
one tenant's traffic delays another's, independent of any cache state.
This package exploits the simulator's per-link lane queueing:

* :mod:`.probe` -- the link-probe and link-flood kernels plus per-link
  idle/contended latency calibration.
* :mod:`.covert` -- a covert channel over pure link contention (no shared
  L2 sets): the trojan floods its NVLink, the spy times probe bursts on
  the same link and threshold-decodes.
* :mod:`.sidechannel` -- the "linkgram": per-link occupancy over time,
  locating which GPU pair a victim's NVLink traffic crosses and
  fingerprinting its burst cadence.
"""

from .covert import LinkCovertChannel, decode_link_trace
from .probe import (
    LinkCalibration,
    calibrate_link,
    flood_gap,
    link_flood_kernel,
    link_probe_kernel,
)
from .sidechannel import Linkgram, LinkgramRecorder, victim_traffic_kernel

__all__ = [
    "LinkCalibration",
    "LinkCovertChannel",
    "Linkgram",
    "LinkgramRecorder",
    "calibrate_link",
    "decode_link_trace",
    "flood_gap",
    "link_flood_kernel",
    "link_probe_kernel",
    "victim_traffic_kernel",
]
