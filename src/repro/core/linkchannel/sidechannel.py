"""The linkgram: per-link occupancy over time (fabric side channel).

The L2 memorygram asks *which cache sets* a victim touches; the linkgram
asks *which NVLink* its traffic crosses and *when*.  A monitor process
probes every peer GPU pair at a fixed cadence and bins the excess latency
(observed minus idle baseline) into a (pair x time) matrix:

* **Locating the victim pair.**  On a cube-mesh only the probe row that
  shares the victim's link heats up.  On a switched topology every route
  through the victim's uplinks heats up, so single-row argmax ties; the
  per-GPU *endpoint heat* (mean excess over the rows containing a GPU)
  still peaks exactly at the victim's two endpoints, on both fabrics.
* **Fingerprinting cadence.**  A bursty victim (iterative all-reduce,
  pipelined transfer) leaves a periodic stripe; the autocorrelation of
  the hottest row recovers the burst period, the fabric analog of the
  memorygram's temporal fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ...runtime.api import Runtime
from ...sim.ops import LinkBurst, LinkEpoch, LinkPad, LinkProbe, ReadClock, Sleep
from ..covert.spy import SpyTrace
from ..sidechannel.memorygram import _block_reduce
from .probe import flood_gap, link_probe_epoch_kernel, link_probe_kernel

__all__ = [
    "Linkgram",
    "LinkgramRecorder",
    "victim_traffic_epoch_kernel",
    "victim_traffic_kernel",
]


def victim_traffic_kernel(
    dst_gpu: int,
    duration_cycles: float,
    period_cycles: float,
    burst_cycles: float,
    occupancy_per_transfer: float,
):
    """A bursty NVLink workload: one posted-write burst per period.

    Models the transfer phase of an iterative multi-GPU kernel (gradient
    exchange, halo swap): ``burst_cycles`` of saturated link traffic at
    the top of every ``period_cycles`` window.
    """
    start = yield ReadClock()
    end = start + duration_cycles
    count = max(1, int(burst_cycles / occupancy_per_transfer))
    cycle = 0
    now = start
    while now < end:
        yield LinkProbe(dst_gpu, num_transfers=count, gap_cycles=1.0, wait=False)
        cycle += 1
        now = yield ReadClock()
        target = start + cycle * period_cycles
        if target > now:
            yield Sleep(target - now)
            now = target


def victim_traffic_epoch_kernel(
    dst_gpu: int,
    duration_cycles: float,
    period_cycles: float,
    burst_cycles: float,
    occupancy_per_transfer: float,
):
    """Epoch-native twin of :func:`victim_traffic_kernel`.

    The whole workload is one :class:`~repro.sim.ops.LinkEpoch` built the
    same way as the covert trojan's: a single unrolled round of posted
    bursts plus :class:`~repro.sim.ops.LinkPad` segments whose ``until``
    offsets are the scalar kernel's own ``cycle * period_cycles`` grid
    products, so every pad lands on the identical absolute slot edge.
    The round count replays the scalar loop's ``now < end`` checks, which
    reduce to ``cycle * period_cycles < duration_cycles`` whenever no
    burst overruns its period -- the builder therefore requires
    ``count * gap`` to fit inside a period (with a cycle of slack for
    float edges) and the launcher falls back to the scalar kernel
    otherwise.
    """
    count = max(1, int(burst_cycles / occupancy_per_transfer))
    if count * 1.0 + 1.0 >= period_cycles:
        raise ValueError(
            "victim burst issue window must fit inside one period; "
            "use victim_traffic_kernel for saturating victims"
        )
    segments: List = []
    cycle = 0
    while cycle * period_cycles < duration_cycles:
        segments.append(
            LinkBurst(dst_gpu, num_transfers=count, gap_cycles=1.0, wait=False)
        )
        cycle += 1
        segments.append(LinkPad(until=cycle * period_cycles))
    yield LinkEpoch(tuple(segments), rounds=1, round_reads=1)


@dataclass
class Linkgram:
    """(GPU pair x time bin) excess-latency matrix from one recording."""

    #: Probed GPU pairs, one matrix row each.
    probe_pairs: Tuple[Tuple[int, int], ...]
    bin_cycles: float
    #: Mean probe latency per (pair, bin); NaN-free (empty bins are 0).
    latency: np.ndarray
    #: Idle median latency per pair (the calibration floor).
    baseline: np.ndarray
    #: Probe samples landing in each (pair, bin).
    counts: np.ndarray

    @property
    def num_bins(self) -> int:
        return self.latency.shape[1]

    def excess(self) -> np.ndarray:
        """Per-(pair, bin) latency above the pair's idle baseline, >= 0.

        Bins without samples read as zero excess: the probe was parked on
        a contended route, which neighbouring bins already show.
        """
        excess = self.latency - self.baseline[:, None]
        excess[self.counts == 0] = 0.0
        return np.maximum(excess, 0.0)

    def row_heat(self) -> np.ndarray:
        """Mean excess per probed pair over the whole recording."""
        return self.excess().mean(axis=1)

    def endpoint_heat(self) -> np.ndarray:
        """Mean excess over the rows containing each GPU.

        Robust to switched fabrics, where every row sharing one of the
        victim's uplinks heats up and row-level argmax ties.
        """
        num_gpus = max(max(pair) for pair in self.probe_pairs) + 1
        heat = np.zeros(num_gpus)
        rows = np.zeros(num_gpus)
        row_heat = self.row_heat()
        for row, (a, b) in enumerate(self.probe_pairs):
            for gpu in (a, b):
                heat[gpu] += row_heat[row]
                rows[gpu] += 1
        return heat / np.maximum(rows, 1)

    def as_image(
        self, shape: Tuple[int, int] = (8, 16), log_scale: bool = True
    ) -> np.ndarray:
        """Downsampled [0, 1] excess image (rows = pairs, cols = time)."""
        rows, cols = shape
        grid = self.excess().astype(np.float64)
        grid = _block_reduce(grid, rows, axis=0)
        grid = _block_reduce(grid, cols, axis=1)
        if log_scale:
            grid = np.log1p(grid)
        top = grid.max()
        if top > 0:
            grid = grid / top
        return grid

    def to_ascii(self, width: int = 64) -> str:
        """Terminal rendering, one row per probed pair."""
        image = self.as_image((len(self.probe_pairs), width), log_scale=True)
        shades = " .:-=+*#%@"
        lines: List[str] = []
        for row, (a, b) in enumerate(self.probe_pairs):
            cells = "".join(
                shades[min(int(v * (len(shades) - 1)), len(shades) - 1)]
                for v in image[row]
            )
            lines.append(f"{a}-{b} |{cells}|")
        return "\n".join(lines)


class LinkgramRecorder:
    """Probes every peer GPU pair concurrently and bins the latencies."""

    def __init__(
        self,
        runtime: Runtime,
        probe_pairs: Optional[Sequence[Tuple[int, int]]] = None,
        bin_cycles: float = 2000.0,
        burst: int = 2,
        spacing_cycles: float = 600.0,
    ) -> None:
        self.runtime = runtime
        topology = runtime.system.topology
        if probe_pairs is None:
            probe_pairs = [
                (a, b)
                for a in range(topology.num_gpus)
                for b in range(a + 1, topology.num_gpus)
                if topology.are_peers(a, b)
            ]
        self.probe_pairs: Tuple[Tuple[int, int], ...] = tuple(
            (int(a), int(b)) for a, b in probe_pairs
        )
        self.bin_cycles = bin_cycles
        self.burst = burst
        self.spacing_cycles = spacing_cycles
        self.monitor = None
        self._baseline: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """One monitor process with peer access across every probed pair."""
        runtime = self.runtime
        self.monitor = runtime.create_process("link_monitor")
        for a, b in self.probe_pairs:
            runtime.enable_peer_access(self.monitor, a, b)

    def _launch_probes(self, duration_cycles: float, start: float) -> List:
        # The idle probe period is the spacing plus one burst's round trip;
        # oversize slightly so the probes outlast the window even when some
        # park on contended routes.
        period = self.spacing_cycles + 380.0
        num_probes = int(duration_cycles / period) + 4
        # Probe sweeps go epoch-native with the runtime's dispatch mode
        # (victim selection happens separately in victim_launcher).
        epochs = getattr(self.runtime, "epoch_dispatch", True)
        probe_kernel = link_probe_epoch_kernel if epochs else link_probe_kernel
        handles = []
        for index, (a, b) in enumerate(self.probe_pairs):
            handles.append(
                self.runtime.launch(
                    probe_kernel(
                        b,
                        num_probes,
                        burst=self.burst,
                        spacing_cycles=self.spacing_cycles,
                    ),
                    a,
                    self.monitor,
                    name=f"linkmon_{index}",
                    start=start,
                )
            )
        return handles

    def calibrate(self, duration_cycles: float = 30_000.0) -> np.ndarray:
        """Per-pair idle baseline: the probes running with no victim.

        On switched fabrics the monitor's own probes share uplinks and
        raise each other's floor; measuring the baseline with the full
        probe array running folds that self-interference in.
        """
        if self.monitor is None:
            raise RuntimeError("recorder not set up: call setup() first")
        start = self.runtime.engine.now
        handles = self._launch_probes(duration_cycles, start)
        self.runtime.synchronize()
        baseline = np.zeros(len(self.probe_pairs))
        for row, handle in enumerate(handles):
            trace: SpyTrace = handle.result
            ordered = sorted(trace.latencies)
            baseline[row] = ordered[len(ordered) // 2] if ordered else 0.0
        self._baseline = baseline
        return baseline

    def record(
        self,
        duration_cycles: float,
        victim_launcher: Optional[Callable[[float], object]] = None,
    ) -> Linkgram:
        """Record one linkgram window.

        ``victim_launcher(start_cycles)`` queues the victim's kernels
        (via ``runtime.launch``) so victim and monitor run concurrently.
        """
        if self.monitor is None:
            raise RuntimeError("recorder not set up: call setup() first")
        if self._baseline is None:
            self.calibrate()
        runtime = self.runtime
        start = runtime.engine.now
        handles = self._launch_probes(duration_cycles, start)
        if victim_launcher is not None:
            victim_launcher(start)
        runtime.synchronize()

        num_bins = max(1, int(np.ceil(duration_cycles / self.bin_cycles)))
        latency = np.zeros((len(self.probe_pairs), num_bins))
        counts = np.zeros((len(self.probe_pairs), num_bins))
        for row, handle in enumerate(handles):
            trace: SpyTrace = handle.result
            for when, value in zip(trace.times, trace.latencies):
                bin_index = int((when - start) / self.bin_cycles)
                if 0 <= bin_index < num_bins:
                    latency[row, bin_index] += value
                    counts[row, bin_index] += 1
        filled = counts > 0
        latency[filled] /= counts[filled]
        assert self._baseline is not None
        return Linkgram(
            probe_pairs=self.probe_pairs,
            bin_cycles=self.bin_cycles,
            latency=latency,
            baseline=self._baseline.copy(),
            counts=counts,
        )

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def locate(self, gram: Linkgram) -> Tuple[int, int]:
        """The GPU pair the victim's traffic crosses (endpoint-heat top 2)."""
        heat = gram.endpoint_heat()
        top_two = sorted(np.argsort(heat)[-2:])
        return int(top_two[0]), int(top_two[1])

    def burst_period(self, gram: Linkgram) -> Optional[float]:
        """Victim burst period in cycles via hottest-row autocorrelation.

        Returns ``None`` when the recording shows no periodic structure
        (fewer than two bursts, or a flat row).
        """
        excess = gram.excess()
        row = excess[int(np.argmax(gram.row_heat()))]
        centered = row - row.mean()
        if not centered.any():
            return None
        corr = np.correlate(centered, centered, mode="full")[len(row) - 1:]
        if len(corr) < 3 or corr[0] <= 0:
            return None
        corr = corr / corr[0]
        # First local maximum after the zero-lag peak's decay.
        for lag in range(1, len(corr) - 1):
            if corr[lag] >= corr[lag - 1] and corr[lag] > corr[lag + 1]:
                if corr[lag] > 0.2:
                    return lag * gram.bin_cycles
        return None

    def victim_launcher(
        self,
        victim_gpu: int,
        dst_gpu: int,
        duration_cycles: float,
        period_cycles: float = 12_000.0,
        burst_cycles: float = 3_000.0,
    ) -> Callable[[float], object]:
        """Build a launcher for the canonical bursty victim workload."""
        runtime = self.runtime
        victim = runtime.create_process("link_victim")
        runtime.enable_peer_access(victim, victim_gpu, dst_gpu)
        occupancy = flood_gap(
            runtime.system.spec, (victim_gpu, dst_gpu)
        )
        # Bursty victims whose issue window fits inside the period ride
        # the columnar fabric engine; saturating ones keep the scalar
        # kernel (their loop pacing reads back their own true clock).
        kernel = victim_traffic_kernel
        count = max(1, int(burst_cycles / occupancy))
        if getattr(runtime, "epoch_dispatch", True) and (
            count * 1.0 + 1.0 < period_cycles
        ):
            kernel = victim_traffic_epoch_kernel

        def launch(start: float):
            return runtime.launch(
                kernel(
                    dst_gpu, duration_cycles, period_cycles, burst_cycles, occupancy
                ),
                victim_gpu,
                victim,
                name="link_victim",
                start=start,
            )

        return launch
