"""Link-probe primitives and per-link latency calibration.

A link probe times a small burst of peer-to-peer transfers across one
NVLink route.  Idle, the burst costs the link round trip (the remote-hit
minus local-hit component of the timing model) plus jitter; when another
tenant's transfers occupy the route, the burst queues behind their lane
reservations and the wait is directly visible in the latency.  Nothing
here touches an L2 set on either GPU -- the channel lives entirely in the
fabric.

Two kernel shapes:

* :func:`link_probe_kernel` -- the receiver/monitor: short dependent
  bursts (``wait=True``) at a fixed cadence, recording (time, median
  latency) samples like the L2 spy does.
* :func:`link_flood_kernel` -- the sender/victim: oversubscribed posted
  writes (``wait=False``) that reserve the route's lanes far ahead of the
  issue window, which is what the probes then collide with.

:func:`calibrate_link` runs both against each other to measure one link's
idle and contended latency distributions; the resulting
:class:`LinkCalibration` carries the decision threshold the covert decoder
and the linkgram both use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from ...config import DGXSpec
from ...sim.ops import (
    EpochIdle,
    LinkBurst,
    LinkEpoch,
    LinkFlood,
    LinkProbe,
    ReadClock,
    Sleep,
)
from ..covert.spy import SpyTrace

__all__ = [
    "LinkCalibration",
    "calibrate_link",
    "flood_gap",
    "link_flood_epoch_kernel",
    "link_flood_kernel",
    "link_probe_epoch_kernel",
    "link_probe_kernel",
]


def flood_gap(spec: DGXSpec, pair: Optional[Tuple[int, int]] = None) -> float:
    """Effective lane-occupancy cycles per transfer on one link.

    ``serialization / lanes``: issuing one transfer per this many cycles
    keeps every lane of a link exactly busy, so a flood sized as
    ``window / flood_gap`` transfers reserves the link for ``window``
    cycles.

    On fabrics with asymmetric per-link widths (the ``dgx_a100``
    preset) a flood paced for the uniform default undershoots wider
    uplinks and the contended latency band collapses toward the idle
    floor.  When the contended ``pair`` of endpoints is known, the
    widest link touching either endpoint sets the pace instead --
    saturating the widest hop of a route saturates every hop.  Uniform
    fabrics resolve to the same gap either way.
    """
    lanes = spec.nvlink.lanes
    if pair is not None and spec.nvlink_lane_widths:
        endpoints = set(pair)
        for edge in spec.nvlink_edges:
            if endpoints & set(edge):
                lanes = max(lanes, spec.lane_width(edge))
    return spec.nvlink.serialization_cycles / max(1, lanes)


def link_probe_kernel(
    dst_gpu: int,
    num_probes: int,
    burst: int = 4,
    spacing_cycles: float = 400.0,
) -> Generator:
    """Time ``num_probes`` link bursts toward ``dst_gpu`` at a fixed cadence.

    Returns a :class:`~repro.core.covert.spy.SpyTrace` of (start time,
    median transfer latency) samples -- the same record shape the L2 spy
    produces, so downstream tooling (waveforms, decoders) is shared.
    """
    times = []
    latencies = []
    for _ in range(num_probes):
        now = yield ReadClock()
        probe = yield LinkProbe(dst_gpu, num_transfers=burst, wait=True)
        times.append(now)
        latencies.append(probe.median_latency)
        yield Sleep(spacing_cycles)
    return SpyTrace(times=times, latencies=latencies)


def link_flood_kernel(
    dst_gpu: int,
    duration_cycles: float,
    occupancy_per_transfer: float,
    burst_cycles: float = 2500.0,
) -> Generator:
    """Keep the route to ``dst_gpu`` saturated for ``duration_cycles``.

    Each iteration posts one oversubscribed write burst (``wait=False``)
    sized to reserve the link for ``burst_cycles``, then sleeps off the
    difference between the reservation horizon and the issue window so the
    backlog never grows beyond one burst (unbounded backlog would smear
    contention far past the flood's end).
    """
    start = yield ReadClock()
    end = start + duration_cycles
    now = start
    while now < end:
        window = min(burst_cycles, end - now)
        count = max(1, int(window / occupancy_per_transfer))
        yield LinkProbe(dst_gpu, num_transfers=count, gap_cycles=1.0, wait=False)
        hold = max(count * occupancy_per_transfer - count * 1.0, 0.0)
        if hold > 0.0:
            yield Sleep(hold)
        now = yield ReadClock()


def link_probe_epoch_kernel(
    dst_gpu: int,
    num_probes: int,
    burst: int = 4,
    spacing_cycles: float = 400.0,
) -> Generator:
    """Epoch-native twin of :func:`link_probe_kernel`.

    The whole probe sweep is one :class:`~repro.sim.ops.LinkEpoch`: the
    engine's link cursor services every burst through the cached columnar
    fabric flow instead of bouncing three heap events per probe.  Sample
    times and median latencies are bit-identical to the scalar kernel's.
    """
    outcome = yield LinkEpoch(
        (
            LinkBurst(dst_gpu, num_transfers=burst, wait=True, record=True),
            EpochIdle(cycles=spacing_cycles),
        ),
        rounds=num_probes,
        round_reads=1,
    )
    return SpyTrace(
        times=[float(t) for t in outcome.starts],
        latencies=[float(m) for m in outcome.medians()],
    )


def link_flood_epoch_kernel(
    dst_gpu: int,
    duration_cycles: float,
    occupancy_per_transfer: float,
    burst_cycles: float = 2500.0,
) -> Generator:
    """Epoch-native twin of :func:`link_flood_kernel`.

    One :class:`~repro.sim.ops.LinkFlood` round per scalar loop iteration
    (burst sizing, pacing hold and termination arithmetic verbatim), so
    the lane reservations land cycle-identically to the scalar flooder.
    """
    yield LinkEpoch(
        (
            LinkFlood(
                dst_gpu,
                occupancy_per_transfer,
                burst_cycles=burst_cycles,
                gap_cycles=1.0,
            ),
        ),
        rounds=None,
        duration_cycles=duration_cycles,
        round_reads=1,
    )


@dataclass(frozen=True)
class LinkCalibration:
    """Idle vs contended latency statistics for one probed link."""

    probe_gpu: int
    far_gpu: int
    hops: int
    idle_mean: float
    idle_std: float
    idle_p25: float
    idle_max: float
    contended_mean: float
    contended_std: float
    #: Cycles above the idle floor a sample must sit to count as contended.
    noise_margin: float

    @property
    def threshold(self) -> float:
        """Fixed binarization threshold anchored on the idle noise floor.

        Contended waits are *uniformly* spread over the remaining flood
        reservation (anywhere from ~0 to the full burst horizon), so a
        midpoint between the idle and contended means would miss every
        sample in the lower quarter of that range.  Anchoring just above
        the idle distribution's upper edge instead catches any wait that
        clears the noise.
        """
        return self.idle_p25 + self.noise_margin

    @property
    def remote_half_gap(self) -> float:
        """Adapter for decoders written against TimingThresholds."""
        return self.noise_margin

    @property
    def separation(self) -> float:
        """Contended-minus-idle mean gap in cycles (channel quality)."""
        return self.contended_mean - self.idle_mean

    def summary(self) -> str:
        return (
            f"link {self.probe_gpu}<->{self.far_gpu} ({self.hops} hop"
            f"{'s' if self.hops != 1 else ''}): idle "
            f"{self.idle_mean:.0f}±{self.idle_std:.0f} cyc, contended "
            f"{self.contended_mean:.0f}±{self.contended_std:.0f} cyc, "
            f"threshold {self.threshold:.0f}"
        )


def calibrate_link(
    runtime,
    probe_gpu: int,
    far_gpu: int,
    probes: int = 48,
    burst: int = 4,
    spacing_cycles: float = 400.0,
) -> LinkCalibration:
    """Measure one link's idle and contended latency distributions.

    Runs the probe kernel alone (idle pass), then again concurrently with
    a flood from ``far_gpu`` toward ``probe_gpu`` (contended pass), using
    throwaway processes so the caller's channel state is untouched.
    """
    import numpy as np

    epochs = getattr(runtime, "epoch_dispatch", True)
    probe_kernel = link_probe_epoch_kernel if epochs else link_probe_kernel
    flood_kernel = link_flood_epoch_kernel if epochs else link_flood_kernel

    spec = runtime.system.spec
    prober = runtime.create_process("link_cal_probe")
    flooder = runtime.create_process("link_cal_flood")
    runtime.enable_peer_access(prober, probe_gpu, far_gpu)
    runtime.enable_peer_access(flooder, far_gpu, probe_gpu)

    idle_handle = runtime.launch(
        probe_kernel(far_gpu, probes, burst=burst, spacing_cycles=spacing_cycles),
        probe_gpu,
        prober,
        name="link_cal_idle",
    )
    runtime.synchronize()
    idle: SpyTrace = idle_handle.result

    occupancy = flood_gap(spec, (probe_gpu, far_gpu))
    duration = probes * (spacing_cycles + 4000.0)
    contended_handle = runtime.launch(
        probe_kernel(far_gpu, probes, burst=burst, spacing_cycles=spacing_cycles),
        probe_gpu,
        prober,
        name="link_cal_probe",
    )
    runtime.launch(
        flood_kernel(probe_gpu, duration, occupancy),
        far_gpu,
        flooder,
        name="link_cal_flood",
    )
    runtime.synchronize()
    contended: SpyTrace = contended_handle.result

    idle_lat = np.asarray(idle.latencies)
    cont_lat = np.asarray(contended.latencies)
    idle_p25 = float(np.percentile(idle_lat, 25))
    idle_std = float(idle_lat.std())
    # The threshold must clear the *entire* idle distribution with slack:
    # its upper spread above the 25th-percentile anchor, four sigmas of
    # jitter, and a small constant floor for near-zero-variance cases.
    noise_margin = (float(idle_lat.max()) - idle_p25) + 4.0 * idle_std + 5.0
    return LinkCalibration(
        probe_gpu=probe_gpu,
        far_gpu=far_gpu,
        hops=runtime.system.topology.hops(probe_gpu, far_gpu),
        idle_mean=float(idle_lat.mean()),
        idle_std=idle_std,
        idle_p25=idle_p25,
        idle_max=float(idle_lat.max()),
        contended_mean=float(cont_lat.mean()),
        contended_std=float(cont_lat.std()),
        noise_margin=noise_margin,
    )
