"""Covert channel over pure NVLink contention -- no shared L2 sets.

Same protocol skeleton as the L2 channel (:mod:`repro.core.covert`):
slotted on-off keying, an alternating preamble for phase lock, round-robin
interleaving across parallel links, optional Hamming ECC.  The physical
medium differs completely: for a '1' slot the trojan posts one
oversubscribed write burst that reserves its NVLink's lanes for most of
the slot, and the spy -- probing the *same link from the other end* --
sees its bursts queue behind those reservations.  Neither side allocates
remote buffers, primes sets, or misses in any cache.

The decoder differs from the L2 one in two load-bearing ways:

* **Fixed noise-floor threshold.**  A contended probe's wait is uniform
  over the remaining flood reservation (it can be tiny or the whole burst
  horizon), so the L2 decoder's midpoint-style threshold would miss a
  fixed fraction of contended samples no matter how hard the trojan
  floods.  The calibration threshold sits just above the idle
  distribution instead, and contention only ever *adds* latency.
* **Any-miss slot voting.**  A contended probe blocks until the flood's
  reservation horizon, so a '1' slot yields only one or two samples --
  the L2 decoder's two-miss majority vote would erase them.  One sample
  over threshold marks the slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ...errors import ChannelError
from ...runtime.api import Runtime
from ...sim.process import Process
from ...sim.ops import LinkBurst, LinkEpoch, LinkPad, LinkProbe, ReadClock, Sleep
from ..covert.channel import ChannelReport, TransmissionResult
from ..covert.encoding import (
    PREAMBLE,
    bit_error_rate,
    deinterleave,
    interleave,
    text_to_bits,
)
from ..covert.spy import SpyTrace
from .probe import (
    LinkCalibration,
    calibrate_link,
    flood_gap,
    link_probe_epoch_kernel,
    link_probe_kernel,
)

__all__ = [
    "LinkCovertChannel",
    "LinkPendingTransmission",
    "decode_link_trace",
    "link_trojan_epoch_kernel",
    "link_trojan_kernel",
]

#: Trojan transmission begins this many slots after the spies start probing,
#: giving every spy a quiet lead-in (same convention as the L2 channel).
_LEAD_SLOTS = 3.0

#: Fraction of a '1' slot left unreserved at the tail so the flood's lane
#: backlog fully drains before the next slot (no inter-symbol interference).
_SLOT_MARGIN_FRAC = 0.12

#: Sizing guess for one idle probe period (burst latency + spacing).
_PROBE_PERIOD_GUESS = 780.0


def link_trojan_kernel(
    dst_gpu: int,
    frame: Sequence[int],
    slot_cycles: float,
    occupancy_per_transfer: float,
    margin_frac: float = _SLOT_MARGIN_FRAC,
):
    """Transmit ``frame`` by flooding (1) or idling (0) the link per slot.

    A '1' slot posts a single burst sized to reserve the link's lanes for
    ``slot_cycles * (1 - margin_frac)``; posted writes return after the
    issue window, so the kernel sleeps out the rest of the slot while the
    reservations do the signalling.
    """
    start = yield ReadClock()
    reserve = slot_cycles * (1.0 - margin_frac)
    count = max(1, int(reserve / occupancy_per_transfer))
    for slot, bit in enumerate(frame):
        if bit:
            yield LinkProbe(dst_gpu, num_transfers=count, gap_cycles=1.0, wait=False)
        now = yield ReadClock()
        target = start + (slot + 1) * slot_cycles
        if target > now:
            yield Sleep(target - now)


def link_trojan_epoch_kernel(
    dst_gpu: int,
    frame: Sequence[int],
    slot_cycles: float,
    occupancy_per_transfer: float,
    margin_frac: float = _SLOT_MARGIN_FRAC,
):
    """Epoch-native twin of :func:`link_trojan_kernel`.

    The whole frame is one :class:`~repro.sim.ops.LinkEpoch`: each slot
    contributes an optional posted flood burst plus a
    :class:`~repro.sim.ops.LinkPad` to the next slot edge, with the same
    burst sizing and pad arithmetic as the scalar kernel -- so the lane
    reservations (and hence the spy's observations) are bit-identical.
    """
    reserve = slot_cycles * (1.0 - margin_frac)
    count = max(1, int(reserve / occupancy_per_transfer))
    segments: List = []
    for slot, bit in enumerate(frame):
        if bit:
            segments.append(
                LinkBurst(
                    dst_gpu, num_transfers=count, gap_cycles=1.0, wait=False
                )
            )
        segments.append(LinkPad(until=(slot + 1) * slot_cycles))
    yield LinkEpoch(tuple(segments), rounds=1, round_reads=1)


def _vote_slot_any(
    times: Sequence[float], raw: Sequence[int], lo: float, hi: float
) -> Tuple[int, float]:
    """Vote one slot window: any over-threshold sample marks a '1'.

    A contended probe parks on the flood's reservation horizon, so '1'
    slots carry very few samples; an empty window is a weak '0' (the
    previous slot's blocked probe can swallow a window's worth of
    cadence).
    """
    votes = [raw[i] for i, t in enumerate(times) if lo < t <= hi]
    if not votes:
        return 0, 0.25
    if any(votes):
        return 1, 1.0
    return 0, 1.0


def _decode_with_start(
    trace: SpyTrace,
    raw: Sequence[int],
    start: float,
    slot_cycles: float,
    num_slots: int,
) -> Tuple[List[int], float]:
    bits: List[int] = []
    score = 0.0
    for slot in range(num_slots):
        lo = start + slot * slot_cycles
        bit, confidence = _vote_slot_any(trace.times, raw, lo, lo + slot_cycles)
        bits.append(bit)
        if slot < len(PREAMBLE):
            score += confidence if bit == PREAMBLE[slot] else -confidence
    return bits, score


def decode_link_trace(
    trace: SpyTrace,
    calibration: LinkCalibration,
    slot_cycles: float,
    payload_bits: int,
) -> Tuple[List[int], float]:
    """Recover one link's payload share from its probe trace.

    Binarizes against the calibration's fixed noise-floor threshold,
    anchors on the first contended sample after a quiet run, then sweeps a
    fine phase grid scored on the preamble (the same lock-on shape as the
    L2 decoder, with any-miss voting).  Returns ``(payload, slot0_start)``.
    """
    raw = trace.binarized(calibration.threshold)
    first_one = None
    quiet_run = 0
    for index, bit in enumerate(raw):
        if bit == 0:
            quiet_run += 1
        elif quiet_run >= 2:
            first_one = index
            break
        else:
            quiet_run = 0
    if first_one is None:
        raise ChannelError("no link contention observed: preamble never detected")
    anchor = trace.times[first_one]
    # Inter-sample spacing is bimodal (idle cadence vs blocked probes);
    # the median is a robust idle-period estimate.
    gaps = sorted(
        trace.times[i] - trace.times[i - 1] for i in range(1, len(trace.times))
    )
    period = gaps[len(gaps) // 2] if gaps else slot_cycles / 4.0

    num_slots = len(PREAMBLE) + payload_bits
    best_bits: List[int] = []
    best_score = float("-inf")
    best_start = anchor
    steps = 25
    span = 2.0 * period
    for step in range(steps + 1):
        start = anchor - 1.5 * period + span * step / steps
        bits, score = _decode_with_start(trace, raw, start, slot_cycles, num_slots)
        if score > best_score:
            best_bits, best_score, best_start = bits, score, start
    preamble_hits = sum(
        1 for got, want in zip(best_bits[: len(PREAMBLE)], PREAMBLE) if got == want
    )
    if preamble_hits < len(PREAMBLE) - 1:
        raise ChannelError(
            f"link preamble lock failed: best match {preamble_hits}/{len(PREAMBLE)}"
        )
    return best_bits[len(PREAMBLE):], best_start


@dataclass
class LinkPendingTransmission:
    """Kernels queued by :meth:`LinkCovertChannel.launch_transmission`."""

    bits: Tuple[int, ...]
    frames: List[List[int]]
    slot_cycles: float
    spy_handles: List = field(default_factory=list)


class LinkCovertChannel:
    """Trojan/spy pairs talking over NVLink lane contention.

    ``links`` is a sequence of ``(trojan_gpu, spy_gpu)`` pairs; each pair
    signals over the route between its two GPUs (the trojan floods toward
    the spy, the spy probes toward the trojan -- links are undirected, so
    both directions contend on the same lanes).  Multiple pairs with
    disjoint routes form parallel subchannels, interleaved exactly like
    the L2 channel's parallel set pairs.
    """

    def __init__(
        self,
        runtime: Runtime,
        links: Sequence[Tuple[int, int]] = ((0, 1),),
    ) -> None:
        self.runtime = runtime
        self.links: List[Tuple[int, int]] = [
            (int(a), int(b)) for a, b in links
        ]
        self.trojans: List[Process] = []
        self.spies: List[Process] = []
        self.calibrations: List[LinkCalibration] = []

    @classmethod
    def auto(cls, runtime: Runtime, num_links: int = 1) -> "LinkCovertChannel":
        """Pick ``num_links`` GPU-disjoint peer pairs from the topology."""
        topology = runtime.system.topology
        used: set = set()
        links: List[Tuple[int, int]] = []
        for a in range(topology.num_gpus):
            if a in used:
                continue
            for b in range(a + 1, topology.num_gpus):
                if b in used or not topology.are_peers(a, b):
                    continue
                links.append((a, b))
                used.update((a, b))
                break
            if len(links) == num_links:
                break
        if len(links) < num_links:
            raise ChannelError(
                f"topology offers only {len(links)} disjoint peer pairs, "
                f"need {num_links}"
            )
        return cls(runtime, links)

    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Create processes, enable peer access, calibrate every link."""
        runtime = self.runtime
        self.trojans = []
        self.spies = []
        self.calibrations = []
        for index, (trojan_gpu, spy_gpu) in enumerate(self.links):
            trojan = runtime.create_process(f"link_trojan_{index}")
            spy = runtime.create_process(f"link_spy_{index}")
            runtime.enable_peer_access(trojan, trojan_gpu, spy_gpu)
            runtime.enable_peer_access(spy, spy_gpu, trojan_gpu)
            self.trojans.append(trojan)
            self.spies.append(spy)
            self.calibrations.append(
                calibrate_link(runtime, probe_gpu=spy_gpu, far_gpu=trojan_gpu)
            )

    # ------------------------------------------------------------------
    def launch_transmission(
        self,
        bits: Sequence[int],
        slot_cycles: float = 3000.0,
    ) -> LinkPendingTransmission:
        """Queue trojan and spy kernels on every link without running."""
        if not self.calibrations:
            raise ChannelError("channel not set up: call setup() first")
        runtime = self.runtime
        epochs = getattr(runtime, "epoch_dispatch", True)
        spy_kernel = link_probe_epoch_kernel if epochs else link_probe_kernel
        trojan_kernel = link_trojan_epoch_kernel if epochs else link_trojan_kernel
        num_links = len(self.links)
        shares = interleave(bits, num_links)
        frames = [list(PREAMBLE) + share for share in shares]
        frame_slots = len(frames[0])

        duration = (_LEAD_SLOTS + frame_slots + 2.0) * slot_cycles
        # Wide slots do not need the stock 400-cycle cadence: ~4 samples
        # per slot is plenty for the majority vote, so the spy spacing
        # stretches with the slot width.  The default 3000-cycle slot
        # resolves to the stock spacing, keeping its schedule unchanged.
        burst_latency = _PROBE_PERIOD_GUESS - 400.0
        spacing = max(400.0, slot_cycles / 4.0 - burst_latency)
        num_probes = int(duration / (spacing + burst_latency)) + 8
        start = runtime.engine.now
        trojan_start = start + _LEAD_SLOTS * slot_cycles

        spy_handles = []
        for index, (trojan_gpu, spy_gpu) in enumerate(self.links):
            spy_handles.append(
                runtime.launch(
                    spy_kernel(trojan_gpu, num_probes, spacing_cycles=spacing),
                    spy_gpu,
                    self.spies[index],
                    name=f"link_spy_{index}",
                    start=start,
                )
            )
        for index, (trojan_gpu, spy_gpu) in enumerate(self.links):
            occupancy = flood_gap(
                runtime.system.spec, (trojan_gpu, spy_gpu)
            )
            runtime.launch(
                trojan_kernel(
                    spy_gpu, frames[index], slot_cycles, occupancy
                ),
                trojan_gpu,
                self.trojans[index],
                name=f"link_trojan_{index}",
                start=trojan_start,
            )
        return LinkPendingTransmission(
            bits=tuple(bits),
            frames=frames,
            slot_cycles=slot_cycles,
            spy_handles=spy_handles,
        )

    def decode_transmission(
        self, pending: LinkPendingTransmission, strict: bool = True
    ) -> TransmissionResult:
        """Decode a completed transmission window."""
        runtime = self.runtime
        bits = pending.bits
        frames = pending.frames
        received_shares: List[List[int]] = []
        traces: List[SpyTrace] = []
        for index, handle in enumerate(pending.spy_handles):
            if not handle.done:
                raise ChannelError(
                    "link spy kernels have not completed; synchronize() first"
                )
            trace: SpyTrace = handle.result
            traces.append(trace)
            payload_len = len(frames[index]) - len(PREAMBLE)
            try:
                share, _start = decode_link_trace(
                    trace,
                    self.calibrations[index],
                    pending.slot_cycles,
                    payload_bits=payload_len,
                )
            except ChannelError:
                if strict:
                    raise
                share = [0] * payload_len
            received_shares.append(share)

        received = deinterleave(received_shares, len(bits))
        payload_slots = len(frames[0]) - len(PREAMBLE)
        duration_cycles = payload_slots * pending.slot_cycles
        seconds = runtime.system.timing.seconds(duration_cycles)
        bandwidth = (len(bits) / 8.0) / seconds if seconds > 0 else 0.0
        return TransmissionResult(
            sent_bits=tuple(bits),
            received_bits=tuple(received),
            num_sets=len(self.links),
            slot_cycles=pending.slot_cycles,
            duration_cycles=duration_cycles,
            duration_seconds=seconds,
            bandwidth_bytes_per_s=bandwidth,
            error_rate=bit_error_rate(bits, received),
            traces=tuple(traces),
        )

    def transmit(
        self,
        bits: Sequence[int],
        slot_cycles: float = 3000.0,
        strict: bool = True,
    ) -> TransmissionResult:
        """Send ``bits`` over the links and decode on the spy side."""
        pending = self.launch_transmission(bits, slot_cycles=slot_cycles)
        self.runtime.synchronize()
        return self.decode_transmission(pending, strict=strict)

    def send_text(
        self, text: str, slot_cycles: float = 3000.0
    ) -> TransmissionResult:
        """Convenience: UTF-8 text over the fabric channel."""
        return self.transmit(text_to_bits(text), slot_cycles=slot_cycles)

    def transmit_reliable(
        self,
        bits: Sequence[int],
        slot_cycles: float = 3000.0,
    ) -> Tuple[List[int], TransmissionResult, int]:
        """Send ``bits`` under Hamming(7,4) + length framing."""
        from ..covert.ecc import decode_with_length, encode_with_length

        framed = encode_with_length(bits)
        raw = self.transmit(framed, slot_cycles=slot_cycles, strict=False)
        payload, corrections = decode_with_length(list(raw.received_bits))
        return payload, raw, corrections

    def sweep(
        self,
        payload_bits: int,
        link_counts: Sequence[int],
        slot_cycles: float = 3000.0,
        seed: int = 0,
    ) -> ChannelReport:
        """Bandwidth-error sweep over parallel link counts (Fig 9 analog).

        Unlike the L2 sweep there is no shared-resource knee to find --
        disjoint links do not contend with each other -- so bandwidth
        scales linearly until the box runs out of disjoint pairs.
        """
        import random

        report = ChannelReport()
        bits = [random.Random(seed).randrange(2) for _ in range(payload_bits)]
        for count in link_counts:
            channel = LinkCovertChannel.auto(self.runtime, count)
            channel.setup()
            outcome = channel.transmit(bits, slot_cycles=slot_cycles, strict=False)
            report.add(count, outcome.bandwidth_bytes_per_s, outcome.error_rate)
        return report
