"""Section IV-A / Algorithm 2: aligning eviction sets across processes.

After discovery, each malicious process holds eviction sets labelled only
by its own counters; nothing says which *physical* set each one occupies.
To communicate, the trojan (local on GPU A) and the spy (on GPU B, buffer
homed on A) must find pairs that collide in the same physical set (Fig 7).

The protocol is the paper's: in one concurrent run, the trojan hammers one
of its eviction sets (Algorithm 2 with a large ``num_main_loop``) while the
spy probes one of its own sets (smaller loop count) and averages the access
time.  A high spy average means mutual eviction -- the two sets share a
physical set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AlignmentError
from ..runtime.api import Runtime
from ..sim.ops import Compute, ProbeSet, SharedStore
from ..sim.process import Process
from .eviction import EvictionSet

__all__ = ["AlignmentResult", "PairMeasurement", "check_pair", "align_eviction_sets"]


def algorithm2_kernel(
    eviction_set: EvictionSet,
    num_main_loop: int,
    shared_times,
    record_slot: int,
    parallel: bool = False,
):
    """Literal Algorithm 2: probe one eviction set ``num_main_loop`` times.

    ``timer2`` accumulates the mean per-line access time of each traversal;
    the final average lands in shared memory (line 17: ``timeBuffMain``).

    One untimed warm-up traversal precedes the measurement: the paper's
    400000/150000-iteration loops make the initial cold misses negligible,
    but at simulation-scale loop counts they would bias the average, so the
    warm-up restores the same steady-state measurement.
    """
    yield ProbeSet(eviction_set.buffer, eviction_set.indices, parallel=parallel)
    timer2 = 0.0
    for _ in range(num_main_loop):  # line 1
        probe = yield ProbeSet(  # lines 5-13: pointer-chase the set
            eviction_set.buffer, eviction_set.indices, parallel=parallel
        )
        timer2 += probe.mean_latency  # line 14
        yield Compute(20)  # line 15: dummy operation
    yield SharedStore(shared_times, record_slot, timer2 / num_main_loop)  # line 17
    return timer2 / num_main_loop


@dataclass(frozen=True)
class PairMeasurement:
    """Timing evidence for one (trojan set, spy set) check."""

    trojan_set_id: int
    spy_set_id: int
    spy_mean_cycles: float
    trojan_mean_cycles: float
    mapped: bool


@dataclass
class AlignmentResult:
    """The discovered trojan-set -> spy-set mapping."""

    pairs: List[Tuple[EvictionSet, EvictionSet]] = field(default_factory=list)
    measurements: List[PairMeasurement] = field(default_factory=list)

    @property
    def num_aligned(self) -> int:
        return len(self.pairs)

    def mapping(self) -> Dict[int, int]:
        return {t.set_id: s.set_id for t, s in self.pairs}

    def summary(self) -> str:
        lines = [f"aligned {self.num_aligned} eviction-set pairs"]
        for trojan_set, spy_set in self.pairs:
            lines.append(
                f"  trojan TE_{trojan_set.set_id} <-> spy SE_{spy_set.set_id}"
            )
        return "\n".join(lines)


def check_pair(
    runtime: Runtime,
    trojan: Process,
    spy: Process,
    trojan_gpu: int,
    spy_gpu: int,
    trojan_set: EvictionSet,
    spy_set: EvictionSet,
    spy_threshold: float,
    trojan_loops: int = 40,
    spy_loops: int = 15,
) -> PairMeasurement:
    """One concurrent run checking one trojan set against one spy set.

    The paper uses ``num_main_loop`` 400000 (trojan) and 150000 (spy); the
    simulated run keeps the same >2x ratio (the local trojan probes faster,
    so it must loop more to cover the spy's whole window) at a scale the
    event engine handles in microseconds of simulated time.
    """
    trojan_shared = trojan.shared_buffer("align_t", 1)
    spy_shared = spy.shared_buffer("align_s", 1)
    handles = runtime.run_concurrent(
        [
            dict(
                kernel=algorithm2_kernel(trojan_set, trojan_loops, trojan_shared, 0),
                gpu_id=trojan_gpu,
                process=trojan,
                name=f"align_trojan_{trojan_set.set_id}",
            ),
            dict(
                kernel=algorithm2_kernel(spy_set, spy_loops, spy_shared, 0),
                gpu_id=spy_gpu,
                process=spy,
                name=f"align_spy_{spy_set.set_id}",
            ),
        ]
    )
    trojan_mean, spy_mean = handles[0].result, handles[1].result
    return PairMeasurement(
        trojan_set_id=trojan_set.set_id,
        spy_set_id=spy_set.set_id,
        spy_mean_cycles=spy_mean,
        trojan_mean_cycles=trojan_mean,
        mapped=spy_mean > spy_threshold,
    )


def align_eviction_sets(
    runtime: Runtime,
    trojan: Process,
    spy: Process,
    trojan_gpu: int,
    spy_gpu: int,
    trojan_sets: Sequence[EvictionSet],
    spy_sets: Sequence[EvictionSet],
    spy_threshold: float,
    need: Optional[int] = None,
    trojan_loops: int = 40,
    spy_loops: int = 15,
) -> AlignmentResult:
    """Pair up trojan and spy eviction sets that share physical sets.

    Checks each trojan set against the not-yet-claimed spy sets (Fig 7);
    stops once ``need`` pairs are found (default: as many as possible).
    Raises :class:`AlignmentError` if ``need`` cannot be met.
    """
    result = AlignmentResult()
    available = list(spy_sets)
    wanted = need if need is not None else min(len(trojan_sets), len(spy_sets))
    for trojan_set in trojan_sets:
        if result.num_aligned >= wanted:
            break
        for spy_set in list(available):
            measurement = check_pair(
                runtime,
                trojan,
                spy,
                trojan_gpu,
                spy_gpu,
                trojan_set,
                spy_set,
                spy_threshold,
                trojan_loops=trojan_loops,
                spy_loops=spy_loops,
            )
            result.measurements.append(measurement)
            if measurement.mapped:
                result.pairs.append((trojan_set, spy_set))
                available.remove(spy_set)
                break
    if need is not None and result.num_aligned < need:
        raise AlignmentError(
            f"aligned only {result.num_aligned} of the {need} requested pairs; "
            f"discover more eviction sets on each side"
        )
    return result
