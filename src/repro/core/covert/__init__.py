"""Section IV: the cross-GPU Prime+Probe covert channel."""

from .channel import ChannelReport, CovertChannel, PendingTransmission, TransmissionResult
from .ecc import hamming74_decode, hamming74_encode
from .multi import MultiGpuChannel, MultiTransmissionResult, plan_gpu_pairs
from .encoding import (
    PREAMBLE,
    bits_to_text,
    deinterleave,
    interleave,
    text_to_bits,
)
from .spy import spy_probe_kernel
from .trojan import trojan_send_kernel

__all__ = [
    "CovertChannel",
    "ChannelReport",
    "TransmissionResult",
    "PendingTransmission",
    "MultiGpuChannel",
    "MultiTransmissionResult",
    "plan_gpu_pairs",
    "hamming74_encode",
    "hamming74_decode",
    "PREAMBLE",
    "text_to_bits",
    "bits_to_text",
    "interleave",
    "deinterleave",
    "trojan_send_kernel",
    "spy_probe_kernel",
]
