"""Multi-GPU-pair covert channel -- the paper's proposed bandwidth scaling.

Section I: "Using additional parallelism (e.g., involving additional GPUs)
can further improve bandwidth, but we did not explore this in this paper."

This module explores it: one logical channel striped over several
*disjoint* trojan/spy GPU pairs of the box (e.g. 0<->1, 2<->3, 4<->5,
6<->7 on the DGX-1).  Each pair is an independent §IV channel with its own
L2 contention domain; the message is striped across pairs and then, within
each pair, interleaved across that pair's aligned cache sets.  Because the
pairs share no L2 and (on disjoint cube-mesh edges) no NVLink, bandwidth
aggregates near-linearly without the intra-GPU port contention that limits
Fig 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ...errors import ChannelError
from ...runtime.api import Runtime
from .channel import CovertChannel, TransmissionResult
from .encoding import bit_error_rate, bits_to_text, deinterleave, interleave, text_to_bits

__all__ = ["MultiGpuChannel", "MultiTransmissionResult", "plan_gpu_pairs"]


def plan_gpu_pairs(runtime: Runtime, max_pairs: Optional[int] = None) -> List[Tuple[int, int]]:
    """Pick disjoint NVLink-connected GPU pairs (a greedy matching)."""
    topology = runtime.system.topology
    used: set = set()
    pairs: List[Tuple[int, int]] = []
    for gpu in range(runtime.num_gpus):
        if gpu in used:
            continue
        for peer in topology.neighbors(gpu):
            if peer not in used:
                pairs.append((gpu, peer))
                used.update((gpu, peer))
                break
        if max_pairs is not None and len(pairs) >= max_pairs:
            break
    if not pairs:
        raise ChannelError("no NVLink-connected GPU pair available")
    return pairs


@dataclass(frozen=True)
class MultiTransmissionResult:
    """Aggregate outcome over all GPU pairs."""

    sent_bits: Tuple[int, ...]
    received_bits: Tuple[int, ...]
    per_pair: Tuple[TransmissionResult, ...]
    error_rate: float
    bandwidth_bytes_per_s: float

    @property
    def num_pairs(self) -> int:
        return len(self.per_pair)

    def received_text(self) -> str:
        return bits_to_text(self.received_bits)


@dataclass
class MultiGpuChannel:
    """One logical covert channel striped over several GPU pairs."""

    runtime: Runtime
    gpu_pairs: Sequence[Tuple[int, int]]
    sets_per_pair: int = 2
    channels: List[CovertChannel] = field(default_factory=list)

    @classmethod
    def auto(
        cls,
        runtime: Runtime,
        num_pairs: Optional[int] = None,
        sets_per_pair: int = 2,
    ) -> "MultiGpuChannel":
        """Build over automatically chosen disjoint NVLink pairs."""
        return cls(
            runtime=runtime,
            gpu_pairs=plan_gpu_pairs(runtime, max_pairs=num_pairs),
            sets_per_pair=sets_per_pair,
        )

    def setup(self) -> None:
        for trojan_gpu, spy_gpu in self.gpu_pairs:
            channel = CovertChannel(
                self.runtime, trojan_gpu=trojan_gpu, spy_gpu=spy_gpu
            )
            channel.setup(self.sets_per_pair)
            self.channels.append(channel)

    # ------------------------------------------------------------------
    def transmit(
        self,
        bits: Sequence[int],
        slot_cycles: float = 3000.0,
        strict: bool = False,
    ) -> MultiTransmissionResult:
        """Stripe ``bits`` across pairs and transmit all pairs concurrently.

        All pairs' kernels run in the same simulation window (they share
        nothing but the event engine), so the wall-clock of the longest
        stripe bounds the whole message -- the aggregation the paper
        anticipates.
        """
        if not self.channels:
            raise ChannelError("multi-channel not set up: call setup() first")
        stripes = interleave(bits, len(self.channels))
        # Queue every pair's kernels first, run the shared engine once,
        # then decode each pair: all stripes move in the same window.
        pendings = [
            channel.launch_transmission(stripe, slot_cycles=slot_cycles)
            for channel, stripe in zip(self.channels, stripes)
        ]
        self.runtime.synchronize()
        results: List[TransmissionResult] = [
            channel.decode_transmission(pending, strict=strict)
            for channel, pending in zip(self.channels, pendings)
        ]
        received_stripes = [list(result.received_bits) for result in results]
        received = deinterleave(received_stripes, len(bits))
        # Aggregate bandwidth: stripes move in parallel, so the logical
        # duration is the slowest stripe's.
        slowest = max(result.duration_seconds for result in results)
        bandwidth = (len(bits) / 8.0) / slowest if slowest > 0 else 0.0
        return MultiTransmissionResult(
            sent_bits=tuple(bits),
            received_bits=tuple(received),
            per_pair=tuple(results),
            error_rate=bit_error_rate(bits, received),
            bandwidth_bytes_per_s=bandwidth,
        )

    def send_text(self, text: str, slot_cycles: float = 3000.0) -> MultiTransmissionResult:
        return self.transmit(text_to_bits(text), slot_cycles=slot_cycles)
