"""Forward error correction for the covert channel.

The paper reports *raw* error rates (1.3 % at the 3.95 MB/s point) and
leaves reliability to the reader.  A real covert channel deployment wraps
the raw bit-pipe in coding; this module provides a classic Hamming(7,4)
single-error-correcting code so the ablation bench can show the trade:
7/4 rate overhead buys orders of magnitude lower residual error anywhere
left of the Fig 9 knee (where raw errors are sparse and isolated).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "hamming74_encode",
    "hamming74_decode",
    "encode_with_length",
    "decode_with_length",
    "code_rate",
]

#: Positions (1-indexed) of the parity bits within a 7-bit codeword.
_PARITY_POSITIONS = (1, 2, 4)


def code_rate() -> float:
    """Information bits per channel bit (4/7)."""
    return 4.0 / 7.0


def _encode_nibble(d: Sequence[int]) -> List[int]:
    """Encode 4 data bits into a 7-bit Hamming codeword.

    Layout (1-indexed): p1 p2 d1 p4 d2 d3 d4, with even parity.
    """
    d1, d2, d3, d4 = (1 if bit else 0 for bit in d)
    p1 = d1 ^ d2 ^ d4
    p2 = d1 ^ d3 ^ d4
    p4 = d2 ^ d3 ^ d4
    return [p1, p2, d1, p4, d2, d3, d4]


def _decode_codeword(c: Sequence[int]) -> Tuple[List[int], bool]:
    """Decode one 7-bit codeword; returns (data bits, corrected_flag)."""
    bits = [1 if bit else 0 for bit in c]
    s1 = bits[0] ^ bits[2] ^ bits[4] ^ bits[6]
    s2 = bits[1] ^ bits[2] ^ bits[5] ^ bits[6]
    s4 = bits[3] ^ bits[4] ^ bits[5] ^ bits[6]
    syndrome = s1 | (s2 << 1) | (s4 << 2)
    corrected = False
    if syndrome:
        bits[syndrome - 1] ^= 1
        corrected = True
    return [bits[2], bits[4], bits[5], bits[6]], corrected


def hamming74_encode(bits: Sequence[int]) -> List[int]:
    """Encode a bit sequence; pads the tail nibble with zeros."""
    padded = list(bits) + [0] * (-len(bits) % 4)
    encoded: List[int] = []
    for at in range(0, len(padded), 4):
        encoded.extend(_encode_nibble(padded[at : at + 4]))
    return encoded


def hamming74_decode(bits: Sequence[int]) -> Tuple[List[int], int]:
    """Decode a codeword stream; returns (data bits, corrections made).

    A ragged tail (incomplete codeword) is dropped.
    """
    decoded: List[int] = []
    corrections = 0
    usable = len(bits) - len(bits) % 7
    for at in range(0, usable, 7):
        data, corrected = _decode_codeword(bits[at : at + 7])
        decoded.extend(data)
        corrections += corrected
    return decoded, corrections


#: Length-header width for self-describing frames.
_LENGTH_BITS = 16


def encode_with_length(bits: Sequence[int]) -> List[int]:
    """Frame + encode: a 16-bit length header, then the payload, all coded."""
    if len(bits) >= 1 << _LENGTH_BITS:
        raise ValueError("payload too long for the 16-bit length header")
    header = [(len(bits) >> shift) & 1 for shift in range(_LENGTH_BITS - 1, -1, -1)]
    return hamming74_encode(header + list(bits))


def decode_with_length(bits: Sequence[int]) -> Tuple[List[int], int]:
    """Inverse of :func:`encode_with_length`; returns (payload, corrections)."""
    decoded, corrections = hamming74_decode(bits)
    if len(decoded) < _LENGTH_BITS:
        return [], corrections
    length = 0
    for bit in decoded[:_LENGTH_BITS]:
        length = (length << 1) | bit
    payload = decoded[_LENGTH_BITS : _LENGTH_BITS + length]
    return payload, corrections
