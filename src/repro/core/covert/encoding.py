"""Bit framing for the covert channel.

The trojan and spy agree (out of band -- it is *their* protocol) on a slot
duration, a per-set preamble, and round-robin interleaving of the message
bits across the aligned set pairs.  The preamble's alternating pattern lets
the spy lock onto the trojan's slot phase without any shared clock, which
is how the paper "tunes parameters on the trojan side ... to communicate
the covert message successfully".
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = [
    "PREAMBLE",
    "text_to_bits",
    "bits_to_text",
    "interleave",
    "deinterleave",
    "bit_error_rate",
]

#: Alternating sync pattern sent on every set before its payload share.
PREAMBLE: Tuple[int, ...] = (1, 0, 1, 0, 1, 0, 1, 0)


def text_to_bits(text: str) -> List[int]:
    """UTF-8 encode ``text`` into a list of bits, MSB first."""
    bits: List[int] = []
    for byte in text.encode("utf-8"):
        bits.extend((byte >> shift) & 1 for shift in range(7, -1, -1))
    return bits


def bits_to_text(bits: Sequence[int]) -> str:
    """Inverse of :func:`text_to_bits`; tolerates a ragged tail."""
    out = bytearray()
    for start in range(0, len(bits) - len(bits) % 8, 8):
        value = 0
        for bit in bits[start : start + 8]:
            value = (value << 1) | (1 if bit else 0)
        out.append(value)
    return out.decode("utf-8", errors="replace")


def interleave(bits: Sequence[int], num_sets: int) -> List[List[int]]:
    """Round-robin split: set ``k`` carries bits ``k, k+n, k+2n, ...``.

    Shares are padded with zeros to equal length so every trojan block
    transmits for the same duration.
    """
    shares: List[List[int]] = [list(bits[k::num_sets]) for k in range(num_sets)]
    longest = max(len(share) for share in shares)
    for share in shares:
        share.extend([0] * (longest - len(share)))
    return shares


def deinterleave(shares: Sequence[Sequence[int]], total_bits: int) -> List[int]:
    """Merge per-set shares back into the original bit order."""
    num_sets = len(shares)
    bits: List[int] = []
    for position in range(total_bits):
        share = shares[position % num_sets]
        index = position // num_sets
        bits.append(share[index] if index < len(share) else 0)
    return bits


def bit_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Fraction of payload bits received incorrectly (missing bits count)."""
    if not sent:
        return 0.0
    errors = sum(
        1
        for position, bit in enumerate(sent)
        if position >= len(received) or (1 if received[position] else 0) != bit
    )
    return errors / len(sent)
