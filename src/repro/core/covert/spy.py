"""The spy (receiver) kernel and its decoder -- Section IV-B/C.

The spy block continuously probes its (remote) eviction set and timestamps
every traversal.  Samples are staged into shared memory exactly as in the
paper ("storing the access cycles temporarily on the shared buffer ...
reduces memory pressure"), and decoded offline: binarize against the remote
hit/miss threshold, lock onto the preamble, then majority-vote each slot.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ...errors import ChannelError
from ...sim.ops import (
    AccessEpoch,
    EpochBurst,
    EpochIdle,
    ProbeSet,
    ReadClock,
    SharedStore,
)
from ..eviction import EvictionSet
from ..timing import TimingThresholds
from .encoding import PREAMBLE

__all__ = [
    "spy_probe_kernel",
    "spy_probe_epoch_kernel",
    "SpyTrace",
    "decode_trace",
]


@dataclass
class SpyTrace:
    """Raw probe record from one spy block: (timestamp, mean latency)."""

    times: List[float]
    latencies: List[float]

    def binarized(self, threshold: float) -> List[int]:
        return [1 if lat > threshold else 0 for lat in self.latencies]


def spy_probe_kernel(
    eviction_set: EvictionSet,
    num_probes: int,
    shared_times,
    stage_base: int = 0,
):
    """Probe the set ``num_probes`` times, staging (time, latency) pairs.

    The shared-memory staging region is a ring: the paper drains it to
    global memory with helper threads; here the host reads the returned
    trace, which models the same data path without the copy traffic.
    """
    times: List[float] = []
    latencies: List[float] = []
    stage_slots = len(shared_times.data) - stage_base
    stage_slots = max(2, stage_slots - stage_slots % 2)
    cursor = 0
    for _ in range(num_probes):
        # Stamp each sample with the probe's *start* time: a probe straddling
        # a slot boundary observes the state left by the earlier slot, so it
        # must be attributed to the slot it started in.
        now = yield ReadClock()
        probe = yield ProbeSet(eviction_set.buffer, eviction_set.indices, parallel=True)
        # Summarize the traversal by its *median* per-line latency: a prime
        # leaves all lines missing (median ~ remote miss), while transient
        # port/NVLink queueing inflates only a few lines and cannot drag
        # the median of a hit traversal over the threshold.
        ordered = sorted(probe.latencies)
        median = ordered[len(ordered) // 2]
        yield SharedStore(shared_times, stage_base + cursor % stage_slots, now)
        yield SharedStore(shared_times, stage_base + (cursor + 1) % stage_slots, median)
        cursor = (cursor + 2) % stage_slots
        times.append(now)
        latencies.append(median)
    return SpyTrace(times=times, latencies=latencies)


def spy_probe_epoch_kernel(
    eviction_set: EvictionSet,
    num_probes: int,
    shared_times,
    stage_base: int = 0,
):
    """Epoch-native :func:`spy_probe_kernel`: the whole probe train is one
    :class:`AccessEpoch` advanced in bulk by the engine's cursor.

    Each round is one parallel traversal plus two idle windows standing in
    for the staging stores' cost (two separate segments, not one doubled
    one: float addition is not associative and the clocks of both kernels
    must agree bit-for-bit).  The staging ring itself is replayed from the
    recorded outcome after the epoch completes -- shared memory is private
    to the block, so only its final contents are observable, and they are
    identical to what the scalar kernel leaves behind.
    """
    stage_slots = len(shared_times.data) - stage_base
    stage_slots = max(2, stage_slots - stage_slots % 2)
    burst = EpochBurst(
        eviction_set.buffer,
        (tuple(eviction_set.indices),),
        parallel=True,
    )
    store = EpochIdle(cycles=SharedStore.cost_cycles)
    outcome = yield AccessEpoch((burst, store, store), rounds=num_probes)
    times = outcome.starts.tolist()
    latencies = outcome.medians().tolist()
    data = shared_times.data
    cursor = 0
    for now, median in zip(times, latencies):
        data[stage_base + cursor % stage_slots] = now
        data[stage_base + (cursor + 1) % stage_slots] = median
        cursor = (cursor + 2) % stage_slots
    return SpyTrace(times=times, latencies=latencies)


def adaptive_threshold(latencies: Sequence[float], half_gap: float) -> float:
    """Per-trace hit/miss threshold re-anchored on the observed hit level.

    Under multi-set transmission, interconnect queueing shifts *both* the
    hit and miss latency clusters upward, so a threshold calibrated in a
    quiet box drifts toward the hit cluster.  The physical hit-to-miss gap
    (the DRAM round trip) is load-independent, so the decoder re-anchors:
    hit level is estimated as the 25th percentile of this trace's samples
    (hits are never the minority -- every '0' slot is all-hits and each '1'
    slot ends with a flush back to hits), and the threshold sits ``half_gap``
    (from the quiet-box calibration) above it.
    """
    values = sorted(latencies)
    if not values:
        return half_gap
    hit_level = values[len(values) // 4]
    return hit_level + half_gap


def _vote_slot(
    times: Sequence[float],
    raw: Sequence[int],
    lo: float,
    hi: float,
) -> Tuple[int, float]:
    """Vote one slot window by miss *count*; returns (bit, confidence).

    During a '1' slot the trojan re-primes continuously, so every probe
    misses (2-3 samples per slot).  During a '0' slot, at most the single
    probe that flushes the previous prime misses.  The decision boundary
    is therefore "two or more misses", which tolerates one stray sample in
    either direction.
    """
    votes = [raw[i] for i, t in enumerate(times) if lo < t <= hi]
    return _vote_votes(votes)


def _vote_votes(votes: Sequence[int]) -> Tuple[int, float]:
    if not votes:
        return 0, 0.0
    misses = sum(votes)
    if misses >= 2:
        return 1, 1.0
    if misses == 0:
        return 0, 1.0
    # Exactly one miss: a lone flush (=> 0) unless it is the only sample.
    if len(votes) == 1:
        return 1, 0.4
    return 0, 0.6


def _decode_with_start(
    trace: SpyTrace,
    raw: Sequence[int],
    start: float,
    slot_cycles: float,
    num_slots: int,
) -> Tuple[List[int], float]:
    """Decode all slots for one candidate phase; returns (bits, score).

    The score is the preamble agreement weighted by vote confidence, which
    disambiguates phases that happen to reproduce the alternating preamble
    through half-slot straddling.
    """
    bits: List[int] = []
    score = 0.0
    times = trace.times
    # Probe stamps are monotone within one spy trace, so each slot's
    # ``lo < t <= hi`` window is a contiguous slice found by bisection --
    # same votes as the linear scan in :func:`_vote_slot`, without the
    # O(samples x slots) rescans.
    for slot in range(num_slots):
        lo = start + slot * slot_cycles
        hi = lo + slot_cycles
        votes = raw[bisect_right(times, lo) : bisect_right(times, hi)]
        bit, confidence = _vote_votes(votes)
        bits.append(bit)
        if slot < len(PREAMBLE):
            score += confidence if bit == PREAMBLE[slot] else -confidence
    return bits, score


def _refine_phase(
    trace: SpyTrace,
    raw: Sequence[int],
    start: float,
    slot_cycles: float,
    period: float,
) -> float:
    """Self-clocking phase refinement from the trace's own edges.

    Every hit/miss transition the spy observes sits just after a true slot
    boundary (the first sample to see the new state lags the boundary by
    up to one probe period, half a period on average).  The circular mean
    of the transition residuals modulo the slot therefore estimates the
    boundary phase; preamble-only scoring can lock half a slot off when
    the preamble's own edges are sparse, and this pass pulls it back using
    the *whole* trace.
    """
    import math

    midpoints = [
        0.5 * (trace.times[i] + trace.times[i - 1])
        for i in range(1, len(raw))
        if raw[i] != raw[i - 1]
    ]
    if len(midpoints) < 4:
        return start
    angles = [2.0 * math.pi * ((t - start) % slot_cycles) / slot_cycles
              for t in midpoints]
    cos_mean = sum(math.cos(a) for a in angles) / len(angles)
    sin_mean = sum(math.sin(a) for a in angles) / len(angles)
    if cos_mean == 0.0 and sin_mean == 0.0:
        return start
    mean_residual = (
        math.atan2(sin_mean, cos_mean) * slot_cycles / (2.0 * math.pi)
    )
    # Observed transitions lag the true boundary by ~half a probe period.
    return start + mean_residual - 0.5 * period


def decode_trace(
    trace: SpyTrace,
    thresholds: "TimingThresholds",
    slot_cycles: float,
    payload_bits: int,
    probe_period_hint: Optional[float] = None,
    rolling: bool = False,
) -> Tuple[List[int], float]:
    """Recover the payload share from one spy trace.

    Locks slot phase on the preamble: the first contention sample after the
    quiet lead-in anchors a fine grid of candidate phases, each scored by
    how confidently it reproduces the alternating preamble.  Returns
    ``(payload_bits_list, start_time_used)``.

    ``thresholds`` is the quiet-box calibration; the decoder self-calibrates
    to this trace's load level with :func:`adaptive_threshold`, or -- with
    ``rolling=True`` -- with a :class:`repro.core.timing.RollingThreshold`
    that tracks *mid-trace* drift (DVFS excursions rescale the clusters
    partway through a trace, where any single per-trace threshold splits
    the difference).
    """
    if rolling:
        from ..timing import RollingThreshold

        tracker = RollingThreshold(thresholds.remote_half_gap)
        raw = tracker.classify(trace.latencies)
    else:
        threshold = adaptive_threshold(trace.latencies, thresholds.remote_half_gap)
        raw = trace.binarized(threshold)
    # The spy's very first probes are cold misses (its lines are not yet
    # cached), which binarize to spurious '1's.  Anchor on the first '1'
    # that follows a run of quiet samples instead.
    first_one = None
    quiet_run = 0
    for index, bit in enumerate(raw):
        if bit == 0:
            quiet_run += 1
        else:
            if quiet_run >= 3:
                first_one = index
                break
            quiet_run = 0
    if first_one is None:
        raise ChannelError("no contention observed: preamble never detected")
    anchor = trace.times[first_one]
    period = probe_period_hint
    if period is None:
        period = (trace.times[-1] - trace.times[0]) / max(1, len(trace.times) - 1)
    num_slots = len(PREAMBLE) + payload_bits

    # The anchoring probe started somewhere inside the first preamble slot,
    # so the true slot-0 start lies in (anchor - period, anchor].  Sweep a
    # fine phase grid across that interval (padded by half a period each
    # side for timing noise).
    best_bits: List[int] = []
    best_score = float("-inf")
    best_start = anchor
    steps = 25
    span = 2.0 * period
    for step in range(steps + 1):
        start = anchor - 1.5 * period + span * step / steps
        bits, score = _decode_with_start(trace, raw, start, slot_cycles, num_slots)
        if score > best_score:
            best_bits, best_score, best_start = bits, score, start
    # Self-clocking refinement: re-anchor the slot grid on the trace's own
    # transition edges and keep the refined decode when it scores at least
    # as well on the preamble.
    refined_start = _refine_phase(trace, raw, best_start, slot_cycles, period)
    if abs(refined_start - best_start) > 1e-9:
        refined_bits, refined_score = _decode_with_start(
            trace, raw, refined_start, slot_cycles, num_slots
        )
        if refined_score >= best_score:
            best_bits, best_score, best_start = (
                refined_bits,
                refined_score,
                refined_start,
            )
    preamble_hits = sum(
        1 for got, want in zip(best_bits[: len(PREAMBLE)], PREAMBLE) if got == want
    )
    if preamble_hits < len(PREAMBLE) - 1:
        raise ChannelError(
            f"preamble lock failed: best match {preamble_hits}/{len(PREAMBLE)}"
        )
    return best_bits[len(PREAMBLE) :], best_start
