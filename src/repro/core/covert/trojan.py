"""The trojan (sender) kernel -- Section IV-B.

One thread block (a single warp) per aligned set pair.  To send a '1' the
block primes the physical cache set by walking its eviction set, evicting
whatever the spy planted there; to send a '0' it burns the slot in
"computationally heavy dummy instructions (e.g. trigonometric
instructions)" so the set stays untouched.
"""

from __future__ import annotations

from typing import Sequence

from ...sim.ops import (
    AccessEpoch,
    Compute,
    EpochBurst,
    EpochIdle,
    EpochRepeat,
    ProbeSet,
    ReadClock,
)
from ..eviction import EvictionSet

__all__ = ["trojan_send_kernel", "trojan_send_epoch_kernel"]

#: Safety margin before the slot edge after which no new prime is issued.
#: A prime *started* before the edge evicts the spy's lines within the
#: slot (its cache effect lands at issue time), so the margin only needs
#: to cover the issue burst of the warp, not the full round-trip.
_PRIME_MARGIN_CYCLES = 120.0

#: Granularity of the dummy-compute wait during '0' slots.
_WAIT_CHUNK_CYCLES = 200.0


def trojan_send_kernel(
    eviction_set: EvictionSet,
    bits: Sequence[int],
    slot_cycles: float,
):
    """Transmit ``bits`` over one aligned set, one bit per slot.

    Slot boundaries are anchored to the kernel's start time so that slot
    ``i`` spans ``[start + i*slot, start + (i+1)*slot)`` with no cumulative
    drift -- the sender-side "controlling parameters that control the
    priming of the cache set".
    """
    start = yield ReadClock()
    sent = 0
    for position, bit in enumerate(bits):
        slot_end = start + (position + 1) * slot_cycles
        if bit:
            while True:
                now = yield ReadClock()
                if now + _PRIME_MARGIN_CYCLES > slot_end:
                    break
                yield ProbeSet(
                    eviction_set.buffer, eviction_set.indices, parallel=True
                )
        # Wait out the slot remainder with dummy compute (never memory).
        while True:
            now = yield ReadClock()
            remaining = slot_end - now
            if remaining <= 0:
                break
            yield Compute(min(remaining, _WAIT_CHUNK_CYCLES))
        sent += 1
    return sent


def trojan_send_epoch_kernel(
    eviction_set: EvictionSet,
    bits: Sequence[int],
    slot_cycles: float,
):
    """Epoch-native :func:`trojan_send_kernel`: the whole frame is one
    declarative :class:`AccessEpoch` plan.

    A '1' slot is an :class:`EpochRepeat` (prime until the margin would
    overrun the slot edge, the scalar loop's exact guard); every slot ends
    with an :class:`EpochIdle` whose ``chunk`` reproduces the scalar wait
    loop's 200-cycle accumulation bit-for-bit.  Slot edges are offsets from
    the epoch's start, which is the same clock value the scalar kernel's
    opening ``ReadClock`` observes.
    """
    burst = EpochBurst(
        eviction_set.buffer,
        (tuple(eviction_set.indices),),
        parallel=True,
    )
    segments = []
    for position, bit in enumerate(bits):
        slot_edge = (position + 1) * slot_cycles
        if bit:
            segments.append(
                EpochRepeat(burst, until=slot_edge, margin=_PRIME_MARGIN_CYCLES)
            )
        segments.append(EpochIdle(until=slot_edge, chunk=_WAIT_CHUNK_CYCLES))
    yield AccessEpoch(tuple(segments), rounds=1, record=False)
    return len(bits)
