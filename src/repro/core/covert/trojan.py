"""The trojan (sender) kernel -- Section IV-B.

One thread block (a single warp) per aligned set pair.  To send a '1' the
block primes the physical cache set by walking its eviction set, evicting
whatever the spy planted there; to send a '0' it burns the slot in
"computationally heavy dummy instructions (e.g. trigonometric
instructions)" so the set stays untouched.
"""

from __future__ import annotations

from typing import Sequence

from ...sim.ops import Compute, ProbeSet, ReadClock
from ..eviction import EvictionSet

__all__ = ["trojan_send_kernel"]

#: Safety margin before the slot edge after which no new prime is issued.
#: A prime *started* before the edge evicts the spy's lines within the
#: slot (its cache effect lands at issue time), so the margin only needs
#: to cover the issue burst of the warp, not the full round-trip.
_PRIME_MARGIN_CYCLES = 120.0

#: Granularity of the dummy-compute wait during '0' slots.
_WAIT_CHUNK_CYCLES = 200.0


def trojan_send_kernel(
    eviction_set: EvictionSet,
    bits: Sequence[int],
    slot_cycles: float,
):
    """Transmit ``bits`` over one aligned set, one bit per slot.

    Slot boundaries are anchored to the kernel's start time so that slot
    ``i`` spans ``[start + i*slot, start + (i+1)*slot)`` with no cumulative
    drift -- the sender-side "controlling parameters that control the
    priming of the cache set".
    """
    start = yield ReadClock()
    sent = 0
    for position, bit in enumerate(bits):
        slot_end = start + (position + 1) * slot_cycles
        if bit:
            while True:
                now = yield ReadClock()
                if now + _PRIME_MARGIN_CYCLES > slot_end:
                    break
                yield ProbeSet(
                    eviction_set.buffer, eviction_set.indices, parallel=True
                )
        # Wait out the slot remainder with dummy compute (never memory).
        while True:
            now = yield ReadClock()
            remaining = slot_end - now
            if remaining <= 0:
                break
            yield Compute(min(remaining, _WAIT_CHUNK_CYCLES))
        sent += 1
    return sent
