"""End-to-end covert channel orchestration -- Fig 8, evaluated in Fig 9/10.

Setup follows the paper's five steps: (1) trojan and spy each allocate a
buffer homed on the trojan's GPU, (2) each derives eviction sets from pure
timing (Section III-B), (3) the sets are aligned across the two processes
(Algorithm 2), then (4) the trojan primes / (5) the spy probes the aligned
physical sets to move bits.

The alignment step exploits the page structure the paper points out
("data belonging to a page is indexed consecutively in the cache"): one
Algorithm 2 run per (trojan color group, spy color group) pair establishes
the group correspondence, after which same-offset lines pair up for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import AlignmentError, ChannelError
from ...runtime.api import Runtime
from ...sim.process import Process
from ..alignment import check_pair
from ..eviction import EvictionSet, PageColoring, discover_page_coloring
from ..timing import TimingThresholds, measure_access_classes
from .encoding import (
    PREAMBLE,
    bit_error_rate,
    bits_to_text,
    deinterleave,
    interleave,
    text_to_bits,
)
from .spy import SpyTrace, decode_trace, spy_probe_epoch_kernel, spy_probe_kernel
from .trojan import trojan_send_epoch_kernel, trojan_send_kernel

__all__ = ["CovertChannel", "TransmissionResult", "ChannelReport"]

#: Trojan transmission begins this many slots after the spies start probing,
#: giving every spy a quiet lead-in to calibrate "no contention".
_LEAD_SLOTS = 3.0

#: Over-provisioning guess for one spy probe's duration (cycles); used only
#: to size the spy's probe count, never for decoding.
_PROBE_PERIOD_GUESS = 550.0


@dataclass(frozen=True)
class TransmissionResult:
    """Outcome of one covert message transfer."""

    sent_bits: Tuple[int, ...]
    received_bits: Tuple[int, ...]
    num_sets: int
    slot_cycles: float
    duration_cycles: float
    duration_seconds: float
    bandwidth_bytes_per_s: float
    error_rate: float
    #: Raw spy traces per set pair (the Fig 10 waveform data).
    traces: Tuple[SpyTrace, ...] = field(repr=False, default=())

    def received_text(self) -> str:
        return bits_to_text(self.received_bits)


@dataclass
class PendingTransmission:
    """Kernels queued by :meth:`CovertChannel.launch_transmission`."""

    bits: Tuple[int, ...]
    frames: List[List[int]]
    slot_cycles: float
    spy_handles: List = field(default_factory=list)


@dataclass
class ChannelReport:
    """Fig 9: bandwidth and error rate versus number of parallel sets."""

    rows: List[Tuple[int, float, float]] = field(default_factory=list)

    def add(self, num_sets: int, bandwidth: float, error_rate: float) -> None:
        self.rows.append((num_sets, bandwidth, error_rate))

    def summary(self) -> str:
        lines = ["sets  bandwidth (KB/s)  error rate (%)"]
        for num_sets, bandwidth, error in self.rows:
            lines.append(f"{num_sets:>4}  {bandwidth / 1024:>15.1f}  {error * 100:>13.2f}")
        return "\n".join(lines)

    def best(self) -> Tuple[int, float, float]:
        """The row with the highest bandwidth (paper: 4 sets, 3.95 MB/s)."""
        return max(self.rows, key=lambda row: row[1])


class CovertChannel:
    """A trojan on ``trojan_gpu`` talking to a spy on ``spy_gpu``.

    Both buffers are homed on ``trojan_gpu`` so the contention medium is
    that GPU's L2, exactly as in Fig 3/8 of the paper.
    """

    def __init__(
        self,
        runtime: Runtime,
        trojan_gpu: int = 0,
        spy_gpu: int = 1,
    ) -> None:
        self.runtime = runtime
        self.trojan_gpu = trojan_gpu
        self.spy_gpu = spy_gpu
        self.trojan: Optional[Process] = None
        self.spy: Optional[Process] = None
        self.thresholds: Optional[TimingThresholds] = None
        self.pairs: List[Tuple[EvictionSet, EvictionSet]] = []
        self._trojan_coloring: Optional[PageColoring] = None
        self._spy_coloring: Optional[PageColoring] = None

    # ------------------------------------------------------------------
    # Setup: steps 1-3 of Fig 8
    # ------------------------------------------------------------------
    def setup(
        self,
        num_sets: int,
        thresholds: Optional[TimingThresholds] = None,
        buffer_pages_per_color: Optional[int] = None,
        cache=None,
    ) -> None:
        """Allocate, discover eviction sets on both sides, and align them.

        Like :meth:`MemorygramProber.setup`, the whole prologue (both
        discoveries plus Algorithm-2 alignment) is checkpointed through
        the artifact cache when one is active and the runtime is pristine;
        the calibration stage has its own entry so ``num_sets`` sweeps
        (Fig 9) share it.
        """
        from ...cache import SetupMemo

        runtime = self.runtime
        spec = runtime.system.spec.gpu
        memo = SetupMemo.for_runtime(runtime, cache)
        discovery_key = dict(
            role="covert",
            trojan_gpu=self.trojan_gpu,
            spy_gpu=self.spy_gpu,
            num_sets=num_sets,
            thresholds=repr(thresholds),
            pages=buffer_pages_per_color,
        )
        if memo is not None:
            restored = memo.load("discovery", **discovery_key)
            if restored is not None:
                (
                    self.trojan,
                    self.spy,
                    self.thresholds,
                    self.pairs,
                    self._trojan_coloring,
                    self._spy_coloring,
                ) = restored
                return
        calibration_key = dict(
            role="covert",
            trojan_gpu=self.trojan_gpu,
            spy_gpu=self.spy_gpu,
        )
        calibrated = (
            memo.load("calibration", **calibration_key)
            if memo is not None and thresholds is None
            else None
        )
        if calibrated is not None:
            self.trojan, self.spy, thresholds = calibrated
        else:
            self.trojan = runtime.create_process("trojan")
            self.spy = runtime.create_process("spy")
            runtime.enable_peer_access(self.spy, self.spy_gpu, self.trojan_gpu)
            if thresholds is None:
                calibration = runtime.create_process("calibrate")
                report = measure_access_classes(
                    runtime, calibration, self.spy_gpu, self.trojan_gpu
                )
                thresholds = report.thresholds()
                if memo is not None:
                    memo.store(
                        "calibration",
                        (self.trojan, self.spy, thresholds),
                        **calibration_key,
                    )
        self.thresholds = thresholds

        colors = max(1, spec.cache.set_stride // spec.page_size)
        per_color = buffer_pages_per_color
        if per_color is None:
            per_color = 2 * spec.cache.associativity + 2
        pages = colors * per_color
        trojan_buf = runtime.malloc(
            self.trojan, self.trojan_gpu, pages * spec.page_size, name="trojan_buf"
        )
        spy_buf = runtime.malloc(
            self.spy, self.trojan_gpu, pages * spec.page_size, name="spy_buf"
        )

        self._trojan_coloring = discover_page_coloring(
            runtime,
            self.trojan,
            self.trojan_gpu,
            trojan_buf,
            spec.cache.associativity,
            thresholds.local,
        )
        self._spy_coloring = discover_page_coloring(
            runtime,
            self.spy,
            self.spy_gpu,
            spy_buf,
            spec.cache.associativity,
            thresholds.remote,
        )
        self.pairs = self._align(num_sets)
        if memo is not None:
            memo.store(
                "discovery",
                (
                    self.trojan,
                    self.spy,
                    self.thresholds,
                    self.pairs,
                    self._trojan_coloring,
                    self._spy_coloring,
                ),
                **discovery_key,
            )

    def _sets_for(
        self, coloring: PageColoring, group: int, offsets: Sequence[int], base_id: int
    ) -> List[EvictionSet]:
        spec = self.runtime.system.spec.gpu
        pages = coloring.groups[group][: spec.cache.associativity]
        sets = []
        for offset in offsets:
            word = offset * coloring.words_per_line
            sets.append(
                EvictionSet(
                    buffer=coloring.buffer,
                    indices=tuple(
                        page * coloring.words_per_page + word for page in pages
                    ),
                    set_id=base_id + offset,
                    origin=(group, offset),
                )
            )
        return sets

    def _align(self, num_sets: int) -> List[Tuple[EvictionSet, EvictionSet]]:
        """Group-level Algorithm 2 alignment, then offset arithmetic."""
        assert self.thresholds is not None
        trojan_coloring, spy_coloring = self._trojan_coloring, self._spy_coloring
        assert trojan_coloring is not None and spy_coloring is not None
        group_match: Dict[int, int] = {}
        claimed: set = set()
        for t_group in range(len(trojan_coloring.groups)):
            trojan_rep = self._sets_for(trojan_coloring, t_group, [0], 1000 * t_group)[0]
            for s_group in range(len(spy_coloring.groups)):
                if s_group in claimed:
                    continue
                spy_rep = self._sets_for(spy_coloring, s_group, [0], 2000 * s_group)[0]
                measurement = check_pair(
                    self.runtime,
                    self.trojan,
                    self.spy,
                    self.trojan_gpu,
                    self.spy_gpu,
                    trojan_rep,
                    spy_rep,
                    self.thresholds.remote,
                )
                if measurement.mapped:
                    group_match[t_group] = s_group
                    claimed.add(s_group)
                    break

        if not group_match:
            raise AlignmentError("no trojan color group matches any spy group")

        pairs: List[Tuple[EvictionSet, EvictionSet]] = []
        lines_per_page = trojan_coloring.lines_per_page
        matches = list(group_match.items())
        if num_sets > lines_per_page * len(matches):
            raise AlignmentError(
                f"cannot place {num_sets} pairs: only "
                f"{lines_per_page * len(matches)} aligned sets available"
            )
        # Each pair gets its own line offset: same-offset sets in different
        # color groups share an L2 bank (set index mod #banks), so stacking
        # pairs at offset 0 would funnel every parallel stream through one
        # bank port and drown the channel in queueing noise.  Per-group
        # offset counters start at staggered phases to keep early pairs on
        # distinct banks.
        next_offset = list(range(len(matches)))
        for set_id in range(num_sets):
            group_index = set_id % len(matches)
            t_group, s_group = matches[group_index]
            offset = next_offset[group_index] % lines_per_page
            next_offset[group_index] += 1
            trojan_set = self._sets_for(trojan_coloring, t_group, [offset], 0)[0]
            spy_set = self._sets_for(spy_coloring, s_group, [offset], 0)[0]
            pairs.append(
                (
                    EvictionSet(
                        trojan_set.buffer,
                        trojan_set.indices,
                        set_id,
                        trojan_set.origin,
                    ),
                    EvictionSet(
                        spy_set.buffer, spy_set.indices, set_id, spy_set.origin
                    ),
                )
            )
        return pairs

    # ------------------------------------------------------------------
    # Transmission: steps 4-5 of Fig 8
    # ------------------------------------------------------------------
    def launch_transmission(
        self,
        bits: Sequence[int],
        slot_cycles: float = 3000.0,
    ) -> "PendingTransmission":
        """Queue the trojan and spy kernels without running them.

        Use together with :meth:`decode_transmission` when several channels
        (e.g. on different GPU pairs) must transmit *concurrently* in one
        simulation window; plain :meth:`transmit` wraps the pair.
        """
        if not self.pairs:
            raise ChannelError("channel not set up: call setup() first")
        assert self.thresholds is not None and self.trojan and self.spy
        runtime = self.runtime
        num_sets = len(self.pairs)
        shares = interleave(bits, num_sets)
        frames = [list(PREAMBLE) + share for share in shares]
        frame_slots = len(frames[0])

        duration = (_LEAD_SLOTS + frame_slots + 2.0) * slot_cycles
        num_probes = int(duration / _PROBE_PERIOD_GUESS) + 8
        start = runtime.engine.now
        trojan_start = start + _LEAD_SLOTS * slot_cycles

        # Epoch dispatch (the default) moves both kernels onto the engine's
        # batch-native cursor; the scalar kernels remain as the per-op
        # differential oracle and produce bit-identical traces.
        epochs = getattr(runtime, "epoch_dispatch", True)
        spy_kernel = spy_probe_epoch_kernel if epochs else spy_probe_kernel
        trojan_kernel = trojan_send_epoch_kernel if epochs else trojan_send_kernel
        spy_handles = []
        for pair_index, (_trojan_set, spy_set) in enumerate(self.pairs):
            shared = self.spy.shared_buffer(f"spy_stage_{pair_index}", 512)
            spy_handles.append(
                runtime.launch(
                    spy_kernel(spy_set, num_probes, shared),
                    self.spy_gpu,
                    self.spy,
                    name=f"spy_probe_{pair_index}",
                    start=start,
                )
            )
        for pair_index, (trojan_set, _spy_set) in enumerate(self.pairs):
            runtime.launch(
                trojan_kernel(trojan_set, frames[pair_index], slot_cycles),
                self.trojan_gpu,
                self.trojan,
                name=f"trojan_send_{pair_index}",
                start=trojan_start,
            )
        return PendingTransmission(
            bits=tuple(bits),
            frames=frames,
            slot_cycles=slot_cycles,
            spy_handles=spy_handles,
        )

    def decode_transmission(
        self,
        pending: "PendingTransmission",
        strict: bool = True,
        rolling: bool = False,
    ) -> TransmissionResult:
        """Decode a completed :meth:`launch_transmission` window.

        ``rolling`` selects the drift-tracking threshold (see
        :class:`repro.core.timing.RollingThreshold`) instead of the
        per-trace percentile anchor -- needed when a DVFS excursion can
        rescale latencies mid-trace.
        """
        assert self.thresholds is not None
        runtime = self.runtime
        bits = pending.bits
        frames = pending.frames
        slot_cycles = pending.slot_cycles

        received_shares: List[List[int]] = []
        traces: List[SpyTrace] = []
        for pair_index, handle in enumerate(pending.spy_handles):
            if not handle.done:
                raise ChannelError(
                    "spy kernels have not completed; synchronize() first"
                )
            trace: SpyTrace = handle.result
            traces.append(trace)
            payload_len = len(frames[pair_index]) - len(PREAMBLE)
            try:
                share, _lock = decode_trace(
                    trace,
                    self.thresholds,
                    slot_cycles,
                    payload_bits=payload_len,
                    rolling=rolling,
                )
            except ChannelError:
                if strict:
                    raise
                share = [0] * payload_len
            received_shares.append(share)

        received = deinterleave(received_shares, len(bits))
        payload_slots = len(frames[0]) - len(PREAMBLE)
        duration_cycles = payload_slots * slot_cycles
        seconds = runtime.system.timing.seconds(duration_cycles)
        bandwidth = (len(bits) / 8.0) / seconds if seconds > 0 else 0.0
        metrics = getattr(runtime, "metrics", None)
        if metrics is not None:
            errors = sum(
                1
                for sent, got in zip(bits, received)
                if (1 if sent else 0) != got
            )
            metrics.count_transmission(len(bits), errors)
        return TransmissionResult(
            sent_bits=tuple(bits),
            received_bits=tuple(received),
            num_sets=len(self.pairs),
            slot_cycles=slot_cycles,
            duration_cycles=duration_cycles,
            duration_seconds=seconds,
            bandwidth_bytes_per_s=bandwidth,
            error_rate=bit_error_rate(bits, received),
            traces=tuple(traces),
        )

    def transmit(
        self,
        bits: Sequence[int],
        slot_cycles: float = 3000.0,
        strict: bool = True,
        rolling: bool = False,
    ) -> TransmissionResult:
        """Send ``bits`` across the aligned pairs and decode on the spy side.

        With ``strict=False`` a set whose spy cannot lock the preamble
        (channel drowned in contention) contributes a zeroed share instead
        of raising, so saturation shows up as error rate -- the regime past
        the knee of Fig 9.
        """
        pending = self.launch_transmission(bits, slot_cycles=slot_cycles)
        self.runtime.synchronize()
        return self.decode_transmission(pending, strict=strict, rolling=rolling)

    def send_text(self, text: str, slot_cycles: float = 3000.0) -> TransmissionResult:
        """Convenience: UTF-8 text over the channel (the Fig 10 demo)."""
        return self.transmit(text_to_bits(text), slot_cycles=slot_cycles)

    def idle(self, cycles: float) -> None:
        """Advance simulated time with both processes quiet (backoff gap)."""
        from ...sim.ops import Sleep

        def _idle_kernel(duration: float):
            yield Sleep(duration)

        self.runtime.run_kernel(
            _idle_kernel(cycles), self.trojan_gpu, self.trojan, name="idle_backoff"
        )

    def transmit_reliable(
        self,
        bits: Sequence[int],
        slot_cycles: float = 3000.0,
        max_attempts: int = 3,
        backoff_slots: float = 16.0,
        rolling: bool = False,
    ) -> Tuple[List[int], TransmissionResult, int]:
        """Send ``bits`` under Hamming(7,4) + length framing.

        Returns ``(recovered_payload, raw_transmission, corrections)``.
        Left of the Fig 9 knee the channel's raw errors are sparse and
        isolated, so single-error correction per codeword typically yields
        an error-free payload at a 4/7 rate cost.

        The length header doubles as a sync check: when the decoded frame
        does not describe a payload of the expected size (preamble lock
        lost, header corrupted beyond correction), the transfer is retried
        after an exponentially growing idle gap -- at most ``max_attempts``
        times, after which :class:`repro.errors.SyncLostError` is raised
        rather than looping forever on a dead channel.
        """
        from ...errors import SyncLostError
        from .ecc import decode_with_length, encode_with_length

        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        framed = encode_with_length(bits)
        for attempt in range(max_attempts):
            raw = self.transmit(
                framed, slot_cycles=slot_cycles, strict=False, rolling=rolling
            )
            payload, corrections = decode_with_length(list(raw.received_bits))
            if len(payload) == len(bits):
                return payload, raw, corrections
            if attempt + 1 < max_attempts:
                self.idle(backoff_slots * (2.0**attempt) * slot_cycles)
        raise SyncLostError(
            f"covert frame never re-synchronized after {max_attempts} attempts "
            f"(expected {len(bits)} payload bits, last decode "
            f"yielded {len(payload)})"
        )
