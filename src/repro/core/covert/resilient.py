"""Self-healing covert transport over the raw Prime+Probe bit-pipe.

The plain :class:`~repro.core.covert.channel.CovertChannel` assumes a
stationary box: one preamble lock per message, thresholds calibrated
once, eviction sets that never rot.  Under the fault model of
:mod:`repro.chaos` (DVFS excursions, L2 flush storms, silent page
migration, link flaps) any of those assumptions can break mid-message.
This module layers a small ARQ protocol on top:

- the payload is cut into short *chunks*, each sent as its own framed
  transmission -- so every chunk re-locks the preamble (pilot re-sync)
  and a fault only costs the chunks it overlaps;
- each chunk carries a 4-bit sequence number and a CRC-8 over header +
  payload, Hamming(7,4)-coded like the ECC bench; the host-side receiver
  NACKs any chunk whose CRC or sequence check fails, triggering a
  retransmit after an exponentially growing idle gap;
- decode uses the drift-tracking :class:`repro.core.timing.RollingThreshold`
  so a DVFS window inside a chunk does not shear the binarization;
- repeated failures feed an :class:`repro.core.eviction.EvictionSetHealth`
  monitor; pairs it flags as rotted are rebuilt *in place* (only the
  affected (trojan, spy) sets) before the next retransmit;
- when a chunk's retry budget runs out the transfer fails loudly with
  :class:`repro.errors.SyncLostError` -- never a hang, never silently
  corrupt data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ...errors import EvictionSetStaleError, SyncLostError
from ..eviction import EvictionSetHealth, repair_eviction_set
from .channel import CovertChannel, TransmissionResult
from .ecc import hamming74_decode, hamming74_encode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...telemetry.health import ChannelHealth

__all__ = ["ResilientCovertChannel", "ResilienceReport", "crc8"]

_SEQ_BITS = 4
_CRC_BITS = 8
_CRC_POLY = 0x107  # x^8 + x^2 + x + 1 (CRC-8/ATM), bitwise


def crc8(bits: Sequence[int]) -> int:
    """CRC-8 (poly 0x07) over a bit sequence, MSB first."""
    crc = 0
    for bit in bits:
        crc = ((crc << 1) | (1 if bit else 0)) & 0x1FF
        if crc & 0x100:
            crc ^= _CRC_POLY
    return crc & 0xFF


def _int_bits(value: int, width: int) -> List[int]:
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def _bits_int(bits: Sequence[int]) -> int:
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return value


@dataclass
class ResilienceReport:
    """What the transfer cost: the graceful-degradation bookkeeping."""

    chunks: int = 0
    frames_sent: int = 0
    retransmits: int = 0
    #: Frames whose spy share came back empty (preamble never locked) --
    #: each retry of one of these is a pilot re-synchronization.
    resyncs: int = 0
    #: (trojan, spy) pairs rebuilt in place, by pair row.
    repairs: List[int] = field(default_factory=list)
    #: Per-chunk attempts actually needed (diagnostics).
    attempts: List[int] = field(default_factory=list)

    @property
    def goodput_ratio(self) -> float:
        """Useful frames / frames sent (1.0 = no retransmissions)."""
        if self.frames_sent == 0:
            return 0.0
        return self.chunks / self.frames_sent


class ResilientCovertChannel:
    """ARQ + self-healing wrapper around a set-up :class:`CovertChannel`."""

    def __init__(
        self,
        channel: CovertChannel,
        chunk_bits: int = 32,
        max_retries: int = 4,
        backoff_slots: float = 8.0,
        rolling: bool = True,
        health: EvictionSetHealth = None,
        monitor: Optional["ChannelHealth"] = None,
    ) -> None:
        if not channel.pairs:
            raise SyncLostError("channel not set up: call setup() first")
        if chunk_bits % 4:
            raise ValueError("chunk_bits must be a multiple of 4 (Hamming nibbles)")
        self.channel = channel
        self.chunk_bits = int(chunk_bits)
        self.max_retries = int(max_retries)
        self.backoff_slots = float(backoff_slots)
        self.rolling = bool(rolling)
        self.health = health or EvictionSetHealth(len(channel.pairs))
        #: Optional streaming :class:`~repro.telemetry.health.ChannelHealth`
        #: monitor, fed once per frame attempt (exact frame BER, SNR,
        #: drift, ARQ costs).  Pure observer: never touches the channel.
        self.monitor = monitor

    # ------------------------------------------------------------------
    def _frame(self, seq: int, chunk: Sequence[int]) -> List[int]:
        body = _int_bits(seq % (1 << _SEQ_BITS), _SEQ_BITS) + list(chunk)
        return hamming74_encode(body + _int_bits(crc8(body), _CRC_BITS))

    def _unframe(self, raw_bits: Sequence[int], seq: int) -> List[int]:
        """Decode + verify one frame; returns the chunk or raises ValueError."""
        decoded, _corrections = hamming74_decode(raw_bits)
        body_len = _SEQ_BITS + self.chunk_bits
        if len(decoded) < body_len + _CRC_BITS:
            raise ValueError("frame truncated")
        body = decoded[:body_len]
        got_crc = _bits_int(decoded[body_len : body_len + _CRC_BITS])
        if crc8(body) != got_crc:
            raise ValueError("CRC mismatch")
        got_seq = _bits_int(body[:_SEQ_BITS])
        if got_seq != seq % (1 << _SEQ_BITS):
            raise ValueError(f"sequence mismatch: got {got_seq}")
        return body[_SEQ_BITS:]

    def _observe(self, raw: TransmissionResult) -> List[int]:
        """Feed the frame's traces to the rot monitor; returns rotted rows."""
        threshold = self.channel.thresholds.remote
        rotted = []
        for row, trace in enumerate(raw.traces):
            if self.health.observe_trace(row, trace, threshold):
                rotted.append(row)
        return rotted

    def _repair(self, rows: Sequence[int]) -> List[int]:
        """Rebuild only the flagged pairs, both sides, preserving alignment.

        Repair is per (color group, line offset) origin, so a repaired
        trojan set and spy set still index the same physical cache set.
        A side that stays unrecoverable keeps its old set (the chunk
        retry budget, not the repair, decides when to give up).
        """
        channel = self.channel
        spec = channel.runtime.system.spec.gpu
        repaired = []
        for row in rows:
            trojan_set, spy_set = channel.pairs[row]
            try:
                new_trojan = repair_eviction_set(
                    channel.runtime,
                    channel.trojan,
                    channel.trojan_gpu,
                    trojan_set,
                    channel._trojan_coloring,
                    spec.cache.associativity,
                    channel.thresholds.local,
                )
                new_spy = repair_eviction_set(
                    channel.runtime,
                    channel.spy,
                    channel.spy_gpu,
                    spy_set,
                    channel._spy_coloring,
                    spec.cache.associativity,
                    channel.thresholds.remote,
                )
            except EvictionSetStaleError:
                continue
            channel.pairs[row] = (new_trojan, new_spy)
            self.health.mark_repaired(row)
            repaired.append(row)
        return repaired

    def _diagnose(
        self,
        seq: int,
        attempt: int,
        ok: bool,
        resync: bool,
        framed: Sequence[int],
        raw: TransmissionResult,
        backoff: float,
    ) -> None:
        """Feed the streaming monitor and metrics for one frame attempt."""
        channel = self.channel
        if self.monitor is not None:
            self.monitor.observe_frame(
                now=channel.runtime.engine.now,
                seq=seq,
                attempt=attempt,
                ok=ok,
                sent_bits=framed,
                received_bits=raw.received_bits,
                traces=raw.traces,
                threshold=channel.thresholds.remote,
                half_gap=channel.thresholds.remote_half_gap,
                backoff_cycles=backoff,
                resync=resync,
            )
        metrics = getattr(channel.runtime, "metrics", None)
        if metrics is not None:
            metrics.count_frame(ok, bool(attempt), resync)
            if backoff:
                metrics.count_backoff(backoff)
            if self.monitor is not None:
                metrics.observe_drift(self.monitor.drift)

    # ------------------------------------------------------------------
    def transmit(
        self,
        bits: Sequence[int],
        slot_cycles: float = 3000.0,
    ) -> Tuple[List[int], ResilienceReport]:
        """Move ``bits`` across the faulty box; returns (payload, report).

        Raises :class:`SyncLostError` when any chunk exhausts its retry
        budget -- after CRC NACKs, exponential backoff, threshold
        re-tracking, and in-place set repair have all failed.
        """
        payload = [1 if bit else 0 for bit in bits]
        report = ResilienceReport()
        received: List[int] = []
        chunks = [
            payload[at : at + self.chunk_bits]
            for at in range(0, len(payload), self.chunk_bits)
        ]
        report.chunks = len(chunks)
        for seq, chunk in enumerate(chunks):
            padded = chunk + [0] * (self.chunk_bits - len(chunk))
            framed = self._frame(seq, padded)
            last_failure = None
            for attempt in range(self.max_retries + 1):
                raw = self.channel.transmit(
                    framed,
                    slot_cycles=slot_cycles,
                    strict=False,
                    rolling=self.rolling,
                )
                report.frames_sent += 1
                if attempt:
                    report.retransmits += 1
                rotted = self._observe(raw)
                got = None
                failure = None
                try:
                    got = self._unframe(raw.received_bits, seq)
                except ValueError as exc:
                    failure = exc
                ok = failure is None
                resync = not ok and not any(raw.received_bits)
                backoff = 0.0
                if not ok and attempt < self.max_retries:
                    backoff = self.backoff_slots * (2.0**attempt) * slot_cycles
                self._diagnose(seq, attempt, ok, resync, framed, raw, backoff)
                if not ok:
                    last_failure = failure
                    if resync:
                        report.resyncs += 1
                    if rotted:
                        repaired = self._repair(rotted)
                        report.repairs.extend(repaired)
                        metrics = getattr(self.channel.runtime, "metrics", None)
                        if metrics is not None:
                            metrics.count_repairs(len(repaired))
                    if backoff:
                        self.channel.idle(backoff)
                    continue
                received.extend(got[: len(chunk)])
                report.attempts.append(attempt + 1)
                break
            else:
                raise SyncLostError(
                    f"chunk {seq}/{len(chunks)} lost sync after "
                    f"{self.max_retries + 1} attempts ({last_failure}); "
                    f"{len(report.repairs)} pair repairs did not recover "
                    "the channel"
                )
        return received, report
