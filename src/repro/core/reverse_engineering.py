"""Section III / Table I: recovering the L2 architecture from user space.

Everything here uses only what the paper's attacker has: user-level
allocation, ``__ldcg`` loads and ``clock()``.  The recovered parameters are
compared against the (simulator-internal) ground truth in the test suite,
mirroring how the paper validates against the published P100 specs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import EvictionSetError
from ..runtime.api import Runtime
from ..sim.ops import Access
from ..sim.process import Process
from .eviction import (
    EvictionSet,
    discover_page_coloring,
    measure_associativity,
    validate_eviction_set,
)
from .timing import TimingThresholds, measure_access_classes

__all__ = ["CacheArchitectureReport", "reverse_engineer_cache", "measure_line_size"]


@dataclass
class CacheArchitectureReport:
    """The attacker's view of Table I."""

    line_size: int
    associativity: int
    num_sets: int
    replacement_policy: str
    thresholds: TimingThresholds

    @property
    def cache_size_bytes(self) -> int:
        return self.line_size * self.associativity * self.num_sets

    def summary(self) -> str:
        """Rendered like Table I of the paper."""
        rows = [
            ("L2 cache size", f"{self.cache_size_bytes // (1024 * 1024)}MB"
             if self.cache_size_bytes >= 1024 * 1024
             else f"{self.cache_size_bytes // 1024}KB"),
            ("Number of Sets", str(self.num_sets)),
            ("Cache line size", f"{self.line_size}B"),
            ("Cache lines per set", str(self.associativity)),
            ("Replacement Policy", self.replacement_policy),
        ]
        width = max(len(k) for k, _ in rows)
        lines = [f"{'Cache Attribute':<{width}} | Values"]
        lines.append("-" * (width + 10))
        lines.extend(f"{key:<{width}} | {value}" for key, value in rows)
        return "\n".join(lines)


def measure_line_size(
    runtime: Runtime,
    process: Process,
    exec_gpu: int,
    home_gpu: int,
    thresholds: TimingThresholds,
    max_line: int = 1024,
) -> int:
    """Find the line size by probing co-residency of nearby addresses.

    Access a cold address, then a second address ``delta`` bytes away: a
    hit means both live in the line the first access filled.  The smallest
    ``delta`` that misses is the line size.  Each ``delta`` uses a fresh,
    never-touched region so left-over cache state cannot interfere.
    """
    miss_threshold = thresholds.remote if exec_gpu != home_gpu else thresholds.local
    region_words = 2 * max_line // 8
    deltas = []
    delta = 8
    while delta <= max_line:
        deltas.append(delta)
        delta *= 2
    buf = runtime.malloc(
        process, home_gpu, len(deltas) * region_words * 8, name="linesize"
    )

    def probe(region: int, delta_bytes: int):
        base = region * region_words
        yield Access(buf, base)
        second = yield Access(buf, base + delta_bytes // 8)
        return second.latency

    line_size: Optional[int] = None
    for region, delta_bytes in enumerate(deltas):
        latency = runtime.run_kernel(
            probe(region, delta_bytes), exec_gpu, process, name="linesize_probe"
        )
        if latency > miss_threshold:
            line_size = delta_bytes
            break
    runtime.free(buf)
    if line_size is None:
        raise EvictionSetError(f"no line boundary found up to {max_line} bytes")
    return line_size


def reverse_engineer_cache(
    runtime: Runtime,
    local_gpu: int = 0,
    remote_gpu: int = 1,
    probe_pages: int = 0,
) -> CacheArchitectureReport:
    """Run the full Section III pipeline and emit Table I.

    1. Timing characterization (Fig 4) -> hit/miss thresholds.
    2. Line size by adjacent-address co-residency.
    3. Page-color discovery over a probe buffer homed on ``remote_gpu``.
    4. Associativity from a minimal eviction set ("evicted after every
       16th address").
    5. Number of sets = colors x lines-per-page (each color group's pages
       cover one aligned window of consecutive sets).
    6. Replacement policy from deterministic-eviction validation (Fig 5).
    """
    process = runtime.create_process("reverse_engineer")
    spec = runtime.system.spec.gpu  # sizes only guide buffer sizing below
    report_timing = measure_access_classes(runtime, process, local_gpu, remote_gpu)
    thresholds = report_timing.thresholds()

    line_size = measure_line_size(
        runtime, process, local_gpu, remote_gpu, thresholds
    )

    # A probe buffer big enough to see every color with >associativity pages.
    if probe_pages <= 0:
        colors_upper_bound = max(
            1, spec.cache.set_stride // spec.page_size
        )
        probe_pages = colors_upper_bound * (2 * spec.cache.associativity + 2)
    buf = runtime.malloc(
        process, remote_gpu, probe_pages * spec.page_size, name="re_probe"
    )
    coloring = discover_page_coloring(
        runtime,
        process,
        local_gpu,
        buf,
        associativity=spec.cache.associativity,
        miss_threshold=thresholds.remote,
    )

    group = coloring.groups[0]
    words_per_page = coloring.words_per_page
    target = group[0] * words_per_page
    members = [page * words_per_page for page in group[1:]]
    associativity = measure_associativity(
        runtime, process, local_gpu, buf, target, members, thresholds.remote
    )

    lines_per_page = spec.page_size // line_size
    num_sets = len(coloring.groups) * lines_per_page

    eviction_set = EvictionSet(buffer=buf, indices=tuple(members[:associativity]))
    validation = validate_eviction_set(
        runtime,
        process,
        local_gpu,
        eviction_set,
        target_index=target,
        miss_threshold=thresholds.remote,
    )
    policy = (
        "LRU" if validation.deterministic_lru(associativity) else "not deterministic"
    )

    return CacheArchitectureReport(
        line_size=line_size,
        associativity=associativity,
        num_sets=num_sets,
        replacement_policy=policy,
        thresholds=thresholds,
    )
