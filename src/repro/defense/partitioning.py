"""MIG-style static L2 partitioning (Section VII).

"A single GPU can be securely partitioned into separate GPU instances for
multiple users with ... L2 cache banks ... assigned uniquely to an
individual instance."  The partitioned cache gives each owner (process) a
private slice of every set's ways, so one process can never evict
another's lines -- which removes the contention signal the attacks need.

The paper notes MIG "requires privileged access and is not available in
Pascal and Volta based DGX machines"; here it is a configuration switch so
the ablation bench can show the attack dying under it.

The same idea extends to the fabric channel
(:mod:`repro.core.linkchannel`): :class:`PartitionedInterconnect` reserves
a private group of lanes per tenant on every link (plus an optional
per-tenant rate shaper), so one tenant's transfers never queue behind
another's and the link-contention signal disappears.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import CacheSpec, DGXSpec
from ..errors import ConfigurationError
from ..hw.cache import L2Cache
from ..hw.interconnect import Edge, FabricFlow, Interconnect
from ..hw.occupancy import single_server_waits, single_server_waits_scalar
from ..hw.replacement import CacheSet, make_set
from ..hw.system import MultiGPUSystem
from ..hw.topology import Topology

__all__ = [
    "PartitionedL2Cache",
    "PartitionedInterconnect",
    "enable_mig_partitioning",
    "enable_lane_partitioning",
]


class PartitionedL2Cache(L2Cache):
    """Way-partitioned L2: each owner gets ``associativity / slices`` ways.

    Owners are mapped to slices round-robin on first use.  Lines of
    different owners live in disjoint way-groups of the same physical set,
    so cross-owner eviction is impossible while set indexing (and hence
    intra-owner behaviour) is unchanged.
    """

    def __init__(
        self, spec: CacheSpec, rng: np.random.Generator, num_slices: int = 2
    ) -> None:
        if num_slices < 1:
            raise ConfigurationError("num_slices must be >= 1")
        if spec.associativity % num_slices:
            raise ConfigurationError(
                f"associativity {spec.associativity} not divisible into "
                f"{num_slices} slices"
            )
        super().__init__(spec, rng)
        self.num_slices = num_slices
        self._ways_per_slice = spec.associativity // num_slices
        self._owner_slice: Dict[Optional[int], int] = {}
        self._rng = rng
        # _sets becomes a matrix: [slice][set_index]
        self._sliced_sets: List[List[CacheSet]] = [
            [
                make_set(spec.replacement, self._ways_per_slice, rng)
                for _ in range(spec.num_sets)
            ]
            for _ in range(num_slices)
        ]

    def slice_of(self, owner: Optional[int]) -> int:
        if owner not in self._owner_slice:
            self._owner_slice[owner] = len(self._owner_slice) % self.num_slices
        return self._owner_slice[owner]

    def assign_owner(self, owner: int, slice_index: int) -> None:
        if not 0 <= slice_index < self.num_slices:
            raise ConfigurationError(f"no slice {slice_index}")
        self._owner_slice[owner] = slice_index

    def _set_for(self, set_index: int, owner: Optional[int]) -> CacheSet:
        return self._sliced_sets[self.slice_of(owner)][set_index]

    def probe_line(self, paddr: int, owner: Optional[int] = None) -> bool:
        set_index = self.addr.set_index(paddr)
        return self._set_for(set_index, owner).contains(self.addr.tag(paddr))

    def invalidate_line(self, paddr: int) -> bool:
        set_index = self.addr.set_index(paddr)
        tag = self.addr.tag(paddr)
        dropped = False
        for slice_sets in self._sliced_sets:
            dropped = slice_sets[set_index].invalidate(tag) or dropped
        return dropped

    def set_occupancy(self, set_index: int) -> int:
        return sum(
            len(slice_sets[set_index].resident_tags())
            for slice_sets in self._sliced_sets
        )

    def invalidate_all(self) -> None:
        for slice_sets in self._sliced_sets:
            for index in range(self.spec.num_sets):
                slice_sets[index] = make_set(
                    self.spec.replacement, self._ways_per_slice, self._rng
                )
        self._bank_busy = [0.0] * self.spec.num_banks


class _ShapedFabricFlow(FabricFlow):
    """Cached-flow variant that applies the per-tenant ingress shaper.

    The lane-group slicing itself needs no override -- ``FabricFlow``
    binds ``_lane_state``'s owner slice at construction -- but the
    columnar advance paths must charge the same shaping delays as the
    scalar ``transfer``/``transfer_batch`` overrides, or the defended
    fabric would diverge between backends (the fused small-burst walk
    previously skipped shaping entirely).
    """

    __slots__ = ()

    def advance_batch(self, stamps: np.ndarray) -> np.ndarray:
        inter = self.inter
        if inter.rate_limit_cycles > 0.0 and stamps.size:
            key = (self.owner, self.src, self.dst)
            stamps_arr = np.asarray(stamps, dtype=np.float64)
            delays, busy_end = single_server_waits(
                inter._shaper.get(key, 0.0), stamps_arr, inter.rate_limit_cycles
            )
            inter._shaper[key] = busy_end
            return super().advance_batch(stamps_arr + delays) + delays
        return super().advance_batch(stamps)

    def advance_batch_small(self, stamps) -> list:
        inter = self.inter
        if inter.rate_limit_cycles > 0.0 and len(stamps):
            key = (self.owner, self.src, self.dst)
            delays, busy_end = single_server_waits_scalar(
                inter._shaper.get(key, 0.0), stamps, inter.rate_limit_cycles
            )
            inter._shaper[key] = busy_end
            shifted = [stamp + delay for stamp, delay in zip(stamps, delays)]
            extras = super().advance_batch_small(shifted)
            return [extra + delay for extra, delay in zip(extras, delays)]
        return super().advance_batch_small(stamps)

    def advance_one(self, now: float) -> float:
        inter = self.inter
        if inter.rate_limit_cycles > 0.0:
            delay = inter._shape_one(self.owner, self.src, self.dst, now)
            return super().advance_one(now + delay) + delay
        return super().advance_one(now)


class PartitionedInterconnect(Interconnect):
    """Lane-partitioned NVLink fabric: each tenant gets private lanes.

    Every link's ``lanes`` are split into ``num_slices`` equal groups and
    owners (process ids) are mapped to groups round-robin on first use
    (pin explicitly with :meth:`assign_owner`).  A transfer only ever
    queues on its owner's group, so a trojan's floods cannot delay a spy's
    probes -- the fabric covert/side channel loses its signal, at the cost
    of each tenant seeing ``lanes / num_slices`` of the link's capacity.

    ``rate_limit_cycles`` adds an optional per-tenant ingress shaper: one
    transfer per that many cycles per (owner, src, dst) flow, modelling a
    QoS rate cap.  Shaping alone throttles a flooder without isolating
    lanes; combined with slicing it also bounds intra-slice queueing.
    """

    def __init__(
        self,
        spec: DGXSpec,
        topology: Topology,
        num_slices: int = 2,
        rate_limit_cycles: float = 0.0,
    ) -> None:
        if num_slices < 1:
            raise ConfigurationError("num_slices must be >= 1")
        for edge in topology.edges:
            width = spec.lane_width(edge)
            if width % num_slices:
                raise ConfigurationError(
                    f"{width} lanes on link {sorted(edge)} not divisible "
                    f"into {num_slices} slices"
                )
        if rate_limit_cycles < 0:
            raise ConfigurationError("rate_limit_cycles must be >= 0")
        super().__init__(spec, topology)
        self.num_slices = num_slices
        self.rate_limit_cycles = float(rate_limit_cycles)
        # Lane groups as index masks over each link's full lane range:
        # slice ``s`` of an edge with width ``w`` owns lanes
        # ``[s * w // num_slices, (s + 1) * w // num_slices)`` -- the
        # per-slice busy lists below are those mask-selected groups.
        self._slice_busy: Dict[Edge, List[list]] = {
            edge: [
                [0.0] * (spec.lane_width(edge) // num_slices)
                for _ in range(num_slices)
            ]
            for edge in topology.edges
        }
        self._owner_slice: Dict[Optional[int], int] = {}
        self._shaper: Dict[Tuple[Optional[int], int, int], float] = {}

    _flow_class = _ShapedFabricFlow

    # ------------------------------------------------------------------
    def slice_of(self, owner: Optional[int]) -> int:
        if owner not in self._owner_slice:
            self._owner_slice[owner] = len(self._owner_slice) % self.num_slices
        return self._owner_slice[owner]

    def assign_owner(self, owner: int, slice_index: int) -> None:
        if not 0 <= slice_index < self.num_slices:
            raise ConfigurationError(f"no lane slice {slice_index}")
        self._owner_slice[owner] = slice_index
        # Cached flows bound the owner's previous lane group; invalidate.
        self._lanes_version += 1

    def _lane_state(self, edge: Edge, owner: Optional[int]) -> list:
        return self._slice_busy[edge][self.slice_of(owner)]

    # ------------------------------------------------------------------
    # Ingress shaping
    # ------------------------------------------------------------------
    def _shape_one(
        self, owner: Optional[int], src_gpu: int, dst_gpu: int, now: float
    ) -> float:
        key = (owner, src_gpu, dst_gpu)
        free = self._shaper.get(key, 0.0)
        start = now if now > free else free
        self._shaper[key] = start + self.rate_limit_cycles
        return start - now

    def transfer(self, src_gpu, dst_gpu, now, owner=None):
        if self.rate_limit_cycles > 0.0 and src_gpu != dst_gpu:
            delay = self._shape_one(owner, src_gpu, dst_gpu, now)
            extra, hops = super().transfer(src_gpu, dst_gpu, now + delay, owner)
            return extra + delay, hops
        return super().transfer(src_gpu, dst_gpu, now, owner)

    def transfer_batch(self, src_gpu, dst_gpu, stamps, owner=None):
        if (
            self.rate_limit_cycles > 0.0
            and src_gpu != dst_gpu
            and np.asarray(stamps).size
        ):
            key = (owner, src_gpu, dst_gpu)
            stamps_arr = np.asarray(stamps, dtype=np.float64)
            delays, busy_end = single_server_waits(
                self._shaper.get(key, 0.0), stamps_arr, self.rate_limit_cycles
            )
            self._shaper[key] = busy_end
            return (
                super().transfer_batch(src_gpu, dst_gpu, stamps_arr + delays, owner)
                + delays
            )
        return super().transfer_batch(src_gpu, dst_gpu, stamps, owner)

    # ------------------------------------------------------------------
    def link_busy_until(self) -> Dict[Edge, float]:
        return {
            edge: max(max(lanes) for lanes in slices)
            for edge, slices in self._slice_busy.items()
        }

    def reset(self) -> None:
        super().reset()
        for slices in self._slice_busy.values():
            for lanes in slices:
                for lane in range(len(lanes)):
                    lanes[lane] = 0.0
        self._shaper.clear()


def enable_lane_partitioning(
    system: MultiGPUSystem,
    num_slices: int = 2,
    rate_limit_cycles: float = 0.0,
) -> PartitionedInterconnect:
    """Swap the box's interconnect for a lane-partitioned one.

    Returns the new interconnect so the caller can pin owners to slices.
    In-flight lane reservations are dropped, as a fabric reconfiguration
    would; the telemetry hook carries over.
    """
    partitioned = PartitionedInterconnect(
        system.spec,
        system.topology,
        num_slices=num_slices,
        rate_limit_cycles=rate_limit_cycles,
    )
    partitioned.tracer = system.interconnect.tracer
    system.interconnect = partitioned
    return partitioned


def enable_mig_partitioning(
    system: MultiGPUSystem, gpu_id: int, num_slices: int = 2
) -> PartitionedL2Cache:
    """Swap one GPU's L2 for a way-partitioned variant (privileged op).

    Returns the new cache so the caller can pin owners to slices.  Existing
    cache contents are dropped, as a real repartitioning would.
    """
    gpu = system.gpus[gpu_id]
    partitioned = PartitionedL2Cache(
        gpu.spec.cache,
        system.rng.generator(f"gpu{gpu_id}/replacement_mig"),
        num_slices=num_slices,
    )
    gpu.l2 = partitioned
    return partitioned
