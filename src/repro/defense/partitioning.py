"""MIG-style static L2 partitioning (Section VII).

"A single GPU can be securely partitioned into separate GPU instances for
multiple users with ... L2 cache banks ... assigned uniquely to an
individual instance."  The partitioned cache gives each owner (process) a
private slice of every set's ways, so one process can never evict
another's lines -- which removes the contention signal the attacks need.

The paper notes MIG "requires privileged access and is not available in
Pascal and Volta based DGX machines"; here it is a configuration switch so
the ablation bench can show the attack dying under it.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..config import CacheSpec
from ..errors import ConfigurationError
from ..hw.cache import L2Cache
from ..hw.replacement import CacheSet, make_set
from ..hw.system import MultiGPUSystem

__all__ = ["PartitionedL2Cache", "enable_mig_partitioning"]


class PartitionedL2Cache(L2Cache):
    """Way-partitioned L2: each owner gets ``associativity / slices`` ways.

    Owners are mapped to slices round-robin on first use.  Lines of
    different owners live in disjoint way-groups of the same physical set,
    so cross-owner eviction is impossible while set indexing (and hence
    intra-owner behaviour) is unchanged.
    """

    def __init__(
        self, spec: CacheSpec, rng: np.random.Generator, num_slices: int = 2
    ) -> None:
        if num_slices < 1:
            raise ConfigurationError("num_slices must be >= 1")
        if spec.associativity % num_slices:
            raise ConfigurationError(
                f"associativity {spec.associativity} not divisible into "
                f"{num_slices} slices"
            )
        super().__init__(spec, rng)
        self.num_slices = num_slices
        self._ways_per_slice = spec.associativity // num_slices
        self._owner_slice: Dict[Optional[int], int] = {}
        self._rng = rng
        # _sets becomes a matrix: [slice][set_index]
        self._sliced_sets: List[List[CacheSet]] = [
            [
                make_set(spec.replacement, self._ways_per_slice, rng)
                for _ in range(spec.num_sets)
            ]
            for _ in range(num_slices)
        ]

    def slice_of(self, owner: Optional[int]) -> int:
        if owner not in self._owner_slice:
            self._owner_slice[owner] = len(self._owner_slice) % self.num_slices
        return self._owner_slice[owner]

    def assign_owner(self, owner: int, slice_index: int) -> None:
        if not 0 <= slice_index < self.num_slices:
            raise ConfigurationError(f"no slice {slice_index}")
        self._owner_slice[owner] = slice_index

    def _set_for(self, set_index: int, owner: Optional[int]) -> CacheSet:
        return self._sliced_sets[self.slice_of(owner)][set_index]

    def probe_line(self, paddr: int, owner: Optional[int] = None) -> bool:
        set_index = self.addr.set_index(paddr)
        return self._set_for(set_index, owner).contains(self.addr.tag(paddr))

    def invalidate_line(self, paddr: int) -> bool:
        set_index = self.addr.set_index(paddr)
        tag = self.addr.tag(paddr)
        dropped = False
        for slice_sets in self._sliced_sets:
            dropped = slice_sets[set_index].invalidate(tag) or dropped
        return dropped

    def set_occupancy(self, set_index: int) -> int:
        return sum(
            len(slice_sets[set_index].resident_tags())
            for slice_sets in self._sliced_sets
        )

    def invalidate_all(self) -> None:
        for slice_sets in self._sliced_sets:
            for index in range(self.spec.num_sets):
                slice_sets[index] = make_set(
                    self.spec.replacement, self._ways_per_slice, self._rng
                )
        self._bank_busy = [0.0] * self.spec.num_banks


def enable_mig_partitioning(
    system: MultiGPUSystem, gpu_id: int, num_slices: int = 2
) -> PartitionedL2Cache:
    """Swap one GPU's L2 for a way-partitioned variant (privileged op).

    Returns the new cache so the caller can pin owners to slices.  Existing
    cache contents are dropped, as a real repartitioning would.
    """
    gpu = system.gpus[gpu_id]
    partitioned = PartitionedL2Cache(
        gpu.spec.cache,
        system.rng.generator(f"gpu{gpu_id}/replacement_mig"),
        num_slices=num_slices,
    )
    gpu.l2 = partitioned
    return partitioned
