"""Reactive defense: detect contention, then partition (Section VII).

"To minimize the performance overhead[,] partitioning-based defense
mechanisms [can] be triggered when contention is detected on a shared
resource (similar to the proposed framework in [36])."

:class:`ReactiveDefense` is that framework: a monitor samples the guarded
GPU's hardware counters in fixed windows; the first window whose signature
matches a cross-GPU Prime+Probe attack triggers MIG-style way-partitioning
on the guarded L2, severing the contention channel mid-transmission.  The
defense records its detection latency so the overhead/coverage trade-off
is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

from ..errors import ReproError
from ..runtime.api import Runtime
from ..sim.ops import ReadClock, Sleep
from ..telemetry.timeseries import CounterSampler, CounterTimeseries
from .detection import ContentionDetector, DetectionReport
from .partitioning import enable_mig_partitioning

__all__ = ["ReactiveDefense"]


@dataclass
class ReactiveDefense:
    """Windowed counter monitor that partitions the L2 upon detection."""

    runtime: Runtime
    gpu_id: int
    window_cycles: float = 150_000.0
    max_windows: int = 400
    num_slices: int = 2
    detector: Optional[ContentionDetector] = None
    #: Simulation time at which partitioning was triggered (None = never).
    triggered_at: Optional[float] = None
    reports: List[DetectionReport] = field(default_factory=list)
    #: The guarded GPU's counter timeseries, one sample per window --
    #: kept after the run for forensics (what did the attack look like?).
    sampler: Optional[CounterSampler] = field(default=None, repr=False)
    _armed: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.detector is None:
            self.detector = ContentionDetector(self.runtime.system, self.gpu_id)

    @property
    def timeseries(self) -> Optional[CounterTimeseries]:
        return self.sampler.timeseries if self.sampler is not None else None

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Launch the monitor; it samples until detection or max_windows.

        The monitor is host-side software reading hardware counters, so its
        stream occupies no SM resources on the guarded GPU.
        """
        if self._armed:
            raise ReproError("reactive defense already armed")
        self._armed = True
        process = self.runtime.create_process("defense_monitor")
        self.runtime.launch(
            self._monitor_kernel(),
            self.gpu_id,
            process,
            name="reactive_defense",
        )

    def _monitor_kernel(self) -> Generator:
        # The monitor consumes the telemetry sampler: one counter-delta
        # sample per window, judged by the detector core.  The samples
        # stay in self.timeseries, so a flagged run carries its own
        # evidence trail (and an unflagged one its baseline).
        assert self.detector is not None
        now = yield ReadClock()
        self.sampler = CounterSampler(
            self.runtime.system,
            self.window_cycles,
            gpus=(self.gpu_id,),
            start=now,
        )
        for _window in range(self.max_windows):
            yield Sleep(self.window_cycles)
            now = yield ReadClock()
            (sample,) = self.sampler.sample(now)
            report = self.detector.evaluate(sample.delta, sample.window)
            self.reports.append(report)
            if report.flagged:
                enable_mig_partitioning(
                    self.runtime.system, self.gpu_id, num_slices=self.num_slices
                )
                self.triggered_at = now
                return

    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self.triggered_at is not None

    def detection_latency(self, attack_start: float) -> Optional[float]:
        """Cycles from attack start to partitioning (None if never)."""
        if self.triggered_at is None:
            return None
        return self.triggered_at - attack_start
