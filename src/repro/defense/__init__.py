"""Section VII: candidate defenses against the cross-GPU attacks."""

from .detection import ContentionDetector, DetectionReport
from .monitor import ReactiveDefense
from .partitioning import PartitionedL2Cache, enable_mig_partitioning

__all__ = [
    "PartitionedL2Cache",
    "enable_mig_partitioning",
    "ContentionDetector",
    "DetectionReport",
    "ReactiveDefense",
]
