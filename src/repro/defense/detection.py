"""Section VII: contention/attack detection from hardware counters.

"The detection of cross-GPU covert or side channel attacks is possible by
monitoring the traffic over NVLinks and access patterns on L2 and memory
(accessible through hardware performance counters)."

:class:`ContentionDetector` samples a GPU's counters over a window and
flags the signature of a cross-GPU Prime+Probe attack: a sustained, high
rate of *remote* requests into this GPU combined with an elevated L2 miss
rate on a working set that never grows (the attacker re-walks the same
eviction sets forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..hw.system import MultiGPUSystem

__all__ = ["ContentionDetector", "DetectionReport"]


@dataclass
class DetectionReport:
    """Verdict plus the evidence behind it."""

    flagged: bool
    remote_request_rate: float  # remote requests per kilocycle
    l2_miss_rate: float
    nvlink_bytes_per_kcycle: float
    window_cycles: float
    reasons: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "ATTACK SUSPECTED" if self.flagged else "normal"
        lines = [
            f"verdict: {verdict}",
            f"  remote requests / kcycle : {self.remote_request_rate:8.2f}",
            f"  L2 miss rate             : {self.l2_miss_rate * 100:8.2f}%",
            f"  NVLink bytes / kcycle    : {self.nvlink_bytes_per_kcycle:8.1f}",
        ]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


class ContentionDetector:
    """Counter-based detector watching one GPU of the box."""

    def __init__(
        self,
        system: MultiGPUSystem,
        gpu_id: int,
        remote_rate_threshold: float = 3.0,
        miss_rate_threshold: float = 0.35,
    ) -> None:
        self.system = system
        self.gpu_id = gpu_id
        self.remote_rate_threshold = remote_rate_threshold
        self.miss_rate_threshold = miss_rate_threshold
        self._snapshot: Dict[str, int] = {}
        self._window_start: float = 0.0

    def open_window(self, now: float) -> None:
        """Snapshot counters at the start of an observation window."""
        self._snapshot = self.system.gpus[self.gpu_id].counters.snapshot()
        self._window_start = now

    def close_window(self, now: float) -> DetectionReport:
        """Evaluate the window ending at ``now``."""
        delta = self.system.gpus[self.gpu_id].counters.delta_from(self._snapshot)
        window = max(1.0, now - self._window_start)
        kcycles = window / 1000.0

        remote_rate = delta["remote_requests_in"] / kcycles
        accesses = delta["l2_hits"] + delta["l2_misses"]
        miss_rate = delta["l2_misses"] / accesses if accesses else 0.0
        nvlink_rate = delta["nvlink_bytes_out"] / kcycles

        reasons: List[str] = []
        if remote_rate > self.remote_rate_threshold:
            reasons.append(
                f"remote request rate {remote_rate:.1f}/kcycle exceeds "
                f"{self.remote_rate_threshold}"
            )
        if miss_rate > self.miss_rate_threshold and remote_rate > 1.0:
            reasons.append(
                f"L2 miss rate {miss_rate * 100:.0f}% with sustained remote "
                f"traffic (Prime+Probe ping-pong signature)"
            )
        return DetectionReport(
            flagged=bool(reasons),
            remote_request_rate=remote_rate,
            l2_miss_rate=miss_rate,
            nvlink_bytes_per_kcycle=nvlink_rate,
            window_cycles=window,
            reasons=reasons,
        )
