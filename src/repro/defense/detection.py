"""Section VII: contention/attack detection from hardware counters.

"The detection of cross-GPU covert or side channel attacks is possible by
monitoring the traffic over NVLinks and access patterns on L2 and memory
(accessible through hardware performance counters)."

:class:`ContentionDetector` samples a GPU's counters over a window and
flags the signature of a cross-GPU Prime+Probe attack: a sustained, high
rate of *remote* requests into this GPU combined with an elevated L2 miss
rate on a working set that never grows (the attacker re-walks the same
eviction sets forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping

from ..hw.system import MultiGPUSystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry.timeseries import CounterTimeseries

__all__ = ["ContentionDetector", "DetectionReport"]


@dataclass
class DetectionReport:
    """Verdict plus the evidence behind it."""

    flagged: bool
    remote_request_rate: float  # remote requests per kilocycle
    l2_miss_rate: float
    nvlink_bytes_per_kcycle: float
    window_cycles: float
    reasons: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "ATTACK SUSPECTED" if self.flagged else "normal"
        lines = [
            f"verdict: {verdict}",
            f"  remote requests / kcycle : {self.remote_request_rate:8.2f}",
            f"  L2 miss rate             : {self.l2_miss_rate * 100:8.2f}%",
            f"  NVLink bytes / kcycle    : {self.nvlink_bytes_per_kcycle:8.1f}",
        ]
        lines.extend(f"  - {reason}" for reason in self.reasons)
        return "\n".join(lines)


class ContentionDetector:
    """Counter-based detector watching one GPU of the box."""

    def __init__(
        self,
        system: MultiGPUSystem,
        gpu_id: int,
        remote_rate_threshold: float = 3.0,
        miss_rate_threshold: float = 0.35,
    ) -> None:
        self.system = system
        self.gpu_id = gpu_id
        self.remote_rate_threshold = remote_rate_threshold
        self.miss_rate_threshold = miss_rate_threshold
        self._snapshot: Dict[str, int] = {}
        self._window_start: float = 0.0

    def open_window(self, now: float) -> None:
        """Snapshot counters at the start of an observation window."""
        self._snapshot = self.system.gpus[self.gpu_id].counters.snapshot()
        self._window_start = now

    def close_window(self, now: float) -> DetectionReport:
        """Evaluate the window ending at ``now``."""
        delta = self.system.gpus[self.gpu_id].counters.delta_from(self._snapshot)
        return self.evaluate(delta, now - self._window_start)

    def scan_timeseries(
        self, timeseries: "CounterTimeseries"
    ) -> List[DetectionReport]:
        """Evaluate every sampled window of a counter timeseries.

        This is the offline/streaming twin of the windowed monitor: a
        :class:`~repro.telemetry.timeseries.CounterSampler` already
        produced per-window deltas for this GPU, so each sample maps to
        one verdict.  Samples with an empty window (back-to-back samples
        at the same instant) are evaluated against a 1-cycle floor.
        """
        return [
            self.evaluate(sample.delta, sample.window)
            for sample in timeseries.for_gpu(self.gpu_id)
        ]

    def evaluate(
        self, delta: Mapping[str, int], window_cycles: float
    ) -> DetectionReport:
        """Judge one window given its counter deltas (the detector core)."""
        window = max(1.0, window_cycles)
        kcycles = window / 1000.0

        remote_rate = delta.get("remote_requests_in", 0) / kcycles
        accesses = delta.get("l2_hits", 0) + delta.get("l2_misses", 0)
        miss_rate = delta.get("l2_misses", 0) / accesses if accesses else 0.0
        nvlink_rate = delta.get("nvlink_bytes_out", 0) / kcycles

        reasons: List[str] = []
        if remote_rate > self.remote_rate_threshold:
            reasons.append(
                f"remote request rate {remote_rate:.1f}/kcycle exceeds "
                f"{self.remote_rate_threshold}"
            )
        if miss_rate > self.miss_rate_threshold and remote_rate > 1.0:
            reasons.append(
                f"L2 miss rate {miss_rate * 100:.0f}% with sustained remote "
                f"traffic (Prime+Probe ping-pong signature)"
            )
        return DetectionReport(
            flagged=bool(reasons),
            remote_request_rate=remote_rate,
            l2_miss_rate=miss_rate,
            nvlink_bytes_per_kcycle=nvlink_rate,
            window_cycles=window,
            reasons=reasons,
        )
