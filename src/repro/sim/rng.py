"""Seeded random-number fan-out.

Every stochastic component of the simulator (frame allocator, timing jitter,
replacement randomness, workload data) draws from its own independent
substream so that adding noise to one component never perturbs another.
Substreams are derived deterministically from a root seed and a string key,
making whole experiments reproducible from a single integer.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFanout", "derive_seed"]


def derive_seed(root_seed: int, key: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a string ``key``."""
    digest = hashlib.sha256(f"{root_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


class RngFanout:
    """Factory of independent :class:`numpy.random.Generator` substreams.

    >>> fan = RngFanout(seed=7)
    >>> a = fan.generator("alloc/gpu0")
    >>> b = fan.generator("alloc/gpu0")   # same key -> identical stream
    >>> float(a.random()) == float(b.random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def generator(self, key: str) -> np.random.Generator:
        """Return a fresh generator for ``key`` (same key ⇒ same stream)."""
        return np.random.default_rng(derive_seed(self.seed, key))

    def child(self, key: str) -> "RngFanout":
        """Return a fan-out rooted at a derived seed (for nested components)."""
        return RngFanout(derive_seed(self.seed, key))
