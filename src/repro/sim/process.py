"""Processes, virtual address spaces and device buffers.

Each :class:`Process` models one user on the box (trojan, spy, victim...)
with a private virtual address space.  Buffers are allocated on a chosen
GPU's HBM; the physical page frames backing them are handed out *randomly*
(seeded) by the device's frame allocator, which is what forces the attacker
to discover eviction sets online instead of computing set indices directly
-- exactly the paper's user-space threat model (no huge pages, no driver
modifications).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import AllocationError, TranslationError

__all__ = ["Process", "DeviceBuffer", "SharedBuffer"]

#: Word size of the simulated load/store unit.  ``__ldcg`` in the paper's
#: pointer chase loads one index per access; we model 8-byte words.
WORD_BYTES = 8

#: Base of the first allocation in every process's virtual address space.
_VADDR_BASE = 0x7F00_0000_0000


@dataclass
class SharedBuffer:
    """An on-SM shared-memory buffer (no L2 traffic, per Section III-A)."""

    name: str
    data: np.ndarray

    @staticmethod
    def of_size(name: str, num_words: int) -> "SharedBuffer":
        return SharedBuffer(name=name, data=np.zeros(num_words, dtype=np.float64))


class DeviceBuffer:
    """A contiguous virtual allocation backed by HBM pages on one GPU.

    The buffer's *home* GPU is where its physical pages live, and therefore
    (per the paper's reverse engineering) where its lines are cached.
    ``data`` holds the buffer contents as int64 words so that pointer-chase
    kernels can store "next index" values and load them back.
    """

    __slots__ = (
        "process",
        "name",
        "device_id",
        "base_vaddr",
        "num_words",
        "data",
        "frames",
        "page_size",
        "token",
        "_words_per_page",
        "_frame_array",
    )

    #: Monotonic generation counter: every buffer (and every translation
    #: change of a buffer) gets a fresh token, so token-keyed caches can
    #: never confuse two allocations the way recycled ``id()``s can.
    _next_token = 0

    def __init__(
        self,
        process: "Process",
        name: str,
        device_id: int,
        base_vaddr: int,
        num_words: int,
        frames: Tuple[int, ...],
        page_size: int,
    ) -> None:
        self.process = process
        self.name = name
        self.device_id = device_id
        self.base_vaddr = base_vaddr
        self.num_words = num_words
        self.data = np.zeros(num_words, dtype=np.int64)
        self.frames = frames
        self.page_size = page_size
        self.token = DeviceBuffer._next_token
        DeviceBuffer._next_token += 1
        self._words_per_page = page_size // WORD_BYTES
        self._frame_array = np.asarray(frames, dtype=np.int64)

    @property
    def size_bytes(self) -> int:
        return self.num_words * WORD_BYTES

    def vaddr(self, index: int) -> int:
        """Virtual address of word ``index``."""
        return self.base_vaddr + index * WORD_BYTES

    def paddr(self, index: int) -> int:
        """Physical address (on the home device) of word ``index``."""
        if not 0 <= index < self.num_words:
            raise TranslationError(
                f"index {index} outside buffer {self.name!r} "
                f"({self.num_words} words)"
            )
        page, offset = divmod(index, self._words_per_page)
        return self.frames[page] * self.page_size + offset * WORD_BYTES

    def paddrs(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`paddr` for a whole batch of word indices."""
        if indices.size and (
            int(indices.min()) < 0 or int(indices.max()) >= self.num_words
        ):
            raise TranslationError(
                f"index outside buffer {self.name!r} ({self.num_words} words)"
            )
        pages, offsets = np.divmod(indices, self._words_per_page)
        return self._frame_array[pages] * self.page_size + offsets * WORD_BYTES

    def remap_page(self, page_index: int, new_frame: int) -> int:
        """Silently migrate one page to a different physical frame.

        Models driver-side page migration: the virtual mapping (and the
        buffer contents) are untouched, but every line of the page now
        lives at a new physical address -- so cached copies of the old
        frame and any eviction set built on it are stale.  Returns the
        old frame.  Callers own the frame-allocator bookkeeping and cache
        scrubbing (see :func:`repro.chaos.remap_buffer_page`).
        """
        if not 0 <= page_index < len(self.frames):
            raise TranslationError(
                f"page {page_index} outside buffer {self.name!r} "
                f"({len(self.frames)} pages)"
            )
        old_frame = self.frames[page_index]
        frames = list(self.frames)
        frames[page_index] = new_frame
        self.frames = tuple(frames)
        self._frame_array = np.asarray(frames, dtype=np.int64)
        # The translation changed: retire the generation token so any
        # address plan cached against the old layout misses on lookup
        # even if an explicit invalidation was skipped.
        self.token = DeviceBuffer._next_token
        DeviceBuffer._next_token += 1
        return old_frame

    def load(self, index: int) -> int:
        return int(self.data[index])

    def store(self, index: int, value: int) -> None:
        self.data[index] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceBuffer({self.name!r}, gpu={self.device_id}, "
            f"words={self.num_words}, pages={len(self.frames)})"
        )


@dataclass
class Process:
    """One user process: address space, allocations, peer-access state."""

    pid: int
    name: str = "proc"
    _next_vaddr: int = field(default=0, repr=False)
    buffers: List[DeviceBuffer] = field(default_factory=list)
    shared: Dict[str, SharedBuffer] = field(default_factory=dict)
    #: (from_gpu, to_gpu) pairs with peer access enabled.
    peer_access: Set[Tuple[int, int]] = field(default_factory=set)

    def __post_init__(self) -> None:
        # Stagger address spaces per pid so vaddrs never collide across
        # processes (they are process-private anyway, but distinct bases
        # make debugging traces unambiguous).
        self._next_vaddr = _VADDR_BASE + self.pid * (1 << 40)

    # ------------------------------------------------------------------
    # Allocation (called by the runtime API, which owns the frame allocator)
    # ------------------------------------------------------------------
    def add_allocation(
        self,
        name: str,
        device_id: int,
        num_words: int,
        frames: Tuple[int, ...],
        page_size: int,
    ) -> DeviceBuffer:
        if num_words <= 0:
            raise AllocationError(f"allocation {name!r} must have > 0 words")
        needed_pages = -(-num_words * WORD_BYTES // page_size)
        if len(frames) != needed_pages:
            raise AllocationError(
                f"allocation {name!r}: got {len(frames)} frames, "
                f"need {needed_pages}"
            )
        base = self._next_vaddr
        # Keep allocations page-aligned and leave a guard page between them.
        span = (needed_pages + 1) * page_size
        self._next_vaddr += span
        buf = DeviceBuffer(
            process=self,
            name=name,
            device_id=device_id,
            base_vaddr=base,
            num_words=num_words,
            frames=frames,
            page_size=page_size,
        )
        self.buffers.append(buf)
        return buf

    def shared_buffer(self, name: str, num_words: int) -> SharedBuffer:
        """Allocate (or fetch) a shared-memory buffer for this process."""
        if name not in self.shared:
            self.shared[name] = SharedBuffer.of_size(name, num_words)
        return self.shared[name]

    def enable_peer_access(self, from_gpu: int, to_gpu: int) -> None:
        self.peer_access.add((from_gpu, to_gpu))

    def has_peer_access(self, from_gpu: int, to_gpu: int) -> bool:
        return from_gpu == to_gpu or (from_gpu, to_gpu) in self.peer_access

    def find_buffer(self, name: str) -> Optional[DeviceBuffer]:
        for buf in self.buffers:
            if buf.name == name:
                return buf
        return None
