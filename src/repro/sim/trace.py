"""Access-trace recording: tap the box's memory traffic for offline study.

A :class:`TraceRecorder` hooks the system's access path and logs one
record per access: (time, executing GPU, home GPU, L2 set, hit, remote,
process id).  Uses include debugging attack kernels, building datasets
outside the live simulation, and ground-truth validation of what the
timing-only attacks inferred.

Recording is explicit and scoped (context manager); the hook costs one
function call per access, so leave it off for large benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

from ..errors import SimulationError
from ..hw.system import MultiGPUSystem

__all__ = ["TraceRecorder", "AccessRecord", "load_trace"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class AccessRecord:
    """One memory access, from the hardware's point of view."""

    time: float
    exec_gpu: int
    home_gpu: int
    set_index: int
    hit: bool
    remote: bool
    pid: int


_FIELDS = ("time", "exec_gpu", "home_gpu", "set_index", "hit", "remote", "pid")


class TraceRecorder:
    """Context manager wrapping a system's access path with a logger.

    >>> with TraceRecorder(runtime.system) as recorder:
    ...     runtime.run_kernel(kernel(), 0, process)
    >>> recorder.records[0].set_index
    """

    def __init__(
        self, system: MultiGPUSystem, capacity: Optional[int] = None
    ) -> None:
        self.system = system
        self.capacity = capacity
        self.records: List[AccessRecord] = []
        self._original_word = None
        self._original_batch = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "TraceRecorder":
        system = self.system
        if getattr(system, "_trace_active", False):
            raise SimulationError("trace recorder already active on this system")
        system._trace_active = True  # type: ignore[attr-defined]
        self._original_word = system.access_word
        self._original_batch = system.access_batch
        recorder = self

        def traced_word(process, buffer, index, exec_gpu, now, is_write=False,
                        through_l1=False):
            result = recorder._original_word(
                process, buffer, index, exec_gpu, now,
                is_write=is_write, through_l1=through_l1,
            )
            recorder._log(
                now, exec_gpu, buffer, index, result.hit, result.remote,
                process.pid,
            )
            return result

        def traced_batch(process, buffer, indices, exec_gpu, now, parallel,
                         issue_gap=4.0):
            latencies, hits, total, remote = recorder._original_batch(
                process, buffer, indices, exec_gpu, now, parallel,
                issue_gap=issue_gap,
            )
            for index, hit in zip(indices, hits):
                recorder._log(
                    now, exec_gpu, buffer, index, hit, remote, process.pid
                )
            return latencies, hits, total, remote

        system.access_word = traced_word  # type: ignore[method-assign]
        system.access_batch = traced_batch  # type: ignore[method-assign]
        return self

    def __exit__(self, *exc_info) -> None:
        self.system.access_word = self._original_word  # type: ignore[method-assign]
        self.system.access_batch = self._original_batch  # type: ignore[method-assign]
        self._original_word = None
        self._original_batch = None
        self.system._trace_active = False  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _log(self, now, exec_gpu, buffer, index, hit, remote, pid) -> None:
        if self.capacity is not None and len(self.records) >= self.capacity:
            return
        home = buffer.device_id
        set_index = self.system.gpus[home].l2.addr.set_index(buffer.paddr(index))
        self.records.append(
            AccessRecord(
                time=float(now),
                exec_gpu=int(exec_gpu),
                home_gpu=int(home),
                set_index=int(set_index),
                hit=bool(hit),
                remote=bool(remote),
                pid=int(pid),
            )
        )

    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """Columnar view of the records."""
        return {
            "time": np.array([r.time for r in self.records]),
            "exec_gpu": np.array([r.exec_gpu for r in self.records]),
            "home_gpu": np.array([r.home_gpu for r in self.records]),
            "set_index": np.array([r.set_index for r in self.records]),
            "hit": np.array([r.hit for r in self.records]),
            "remote": np.array([r.remote for r in self.records]),
            "pid": np.array([r.pid for r in self.records]),
        }

    def save(self, path: PathLike) -> None:
        np.savez_compressed(Path(path), **self.to_arrays())

    def miss_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if not r.hit) / len(self.records)


def load_trace(path: PathLike) -> List[AccessRecord]:
    archive = np.load(Path(path))
    columns = {name: archive[name] for name in _FIELDS}
    return [
        AccessRecord(
            time=float(columns["time"][i]),
            exec_gpu=int(columns["exec_gpu"][i]),
            home_gpu=int(columns["home_gpu"][i]),
            set_index=int(columns["set_index"][i]),
            hit=bool(columns["hit"][i]),
            remote=bool(columns["remote"][i]),
            pid=int(columns["pid"][i]),
        )
        for i in range(len(columns["time"]))
    ]
