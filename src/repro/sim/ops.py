"""Operation vocabulary yielded by kernel coroutines.

A kernel is a Python generator.  Each ``yield`` hands one operation to the
:class:`repro.sim.engine.Engine`, which executes it against the hardware
model, charges the stream's clock, and sends the result back into the
generator::

    def kernel(ctx):
        value, latency = yield Access(buf, index)      # __ldcg + clock()
        yield Compute(500)                             # dummy trig work
        yield SharedStore(times, slot, latency)        # stage into shared mem

The result types are:

========================  =============================================
op                        result sent back into the generator
========================  =============================================
:class:`Access`           ``AccessResult`` (value, latency, hit, ...)
:class:`ProbeSet`         ``ProbeResult`` (per-line latencies, ...)
:class:`ProbeEpoch`       ``EpochResult`` (per-set latencies, ...)
:class:`LinkProbe`        ``LinkProbeResult`` (per-transfer latencies, ...)
:class:`Store`            ``AccessResult`` (like :class:`Access`)
:class:`SharedStore`      ``None``
:class:`Compute`          ``None``
:class:`Fence`            ``None``
:class:`Sleep`            ``None``
:class:`ReadClock`        current stream clock in cycles (float)
========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .process import DeviceBuffer

__all__ = [
    "Access",
    "ProbeSet",
    "ProbeEpoch",
    "LinkProbe",
    "Store",
    "SharedStore",
    "Compute",
    "Fence",
    "Sleep",
    "ReadClock",
    "AccessResult",
    "ProbeResult",
    "EpochResult",
    "LinkProbeResult",
]


@dataclass(frozen=True)
class Access:
    """A single load of one 8-byte word.

    ``index`` addresses the buffer as an array of int64 words, so a stride
    of one cache line (128 B) is 16 indices.

    By default the load models ``__ldcg()``: it bypasses the L1 and is
    serviced by the L2 of the GPU homing the physical page -- the paper
    uses ``__ldcg`` for exactly this, because an L1 hit on the attacker's
    own GPU would hide the remote L2's state.  ``through_l1=True`` models
    an ordinary load that consults the local L1 first.
    """

    buffer: "DeviceBuffer"
    index: int
    through_l1: bool = False


@dataclass(frozen=True)
class ProbeSet:
    """Traverse a whole eviction set in one operation.

    ``parallel=False`` models a dependent pointer chase (Algorithm 1/2):
    latencies add up.  ``parallel=True`` models a warp of threads touching
    all lines with overlapped latency (the covert-channel probe): the
    total cost is the slowest access plus per-access issue overhead.
    The cache-state effect (fills/evictions) is identical in both modes.
    """

    buffer: "DeviceBuffer"
    indices: Sequence[int]
    parallel: bool = False
    #: Cycles between consecutive issue slots in parallel mode.
    issue_gap: float = 4.0


@dataclass(frozen=True)
class ProbeEpoch:
    """Traverse many eviction sets back-to-back in one operation.

    The multi-set fast path of the memorygram prober: one epoch covers a
    spy block's whole sweep over its monitored sets, serviced as a single
    batched call against the hardware model (see
    :meth:`repro.hw.system.MultiGPUSystem.access_epoch` for the issue
    semantics).  The result reports each set's latencies plus its start
    offset within the epoch, so per-set samples can still be placed on
    the memorygram time axis.
    """

    buffer: "DeviceBuffer"
    sets: Sequence[Sequence[int]]
    parallel: bool = True
    #: Cycles between consecutive issue slots in parallel mode.
    issue_gap: float = 4.0


@dataclass(frozen=True)
class LinkProbe:
    """Time a burst of peer-to-peer transfers over the NVLink route to
    ``dst_gpu``.

    The fabric-channel primitive (:mod:`repro.core.linkchannel`): it
    touches no cache sets -- each transfer rides the link route and comes
    back with a latency dominated by link serialization queueing, so the
    burst measures *link* contention and nothing else.

    ``wait=True`` models dependent round-trip reads: the stream clock
    advances to the last transfer's completion (a probe).  ``wait=False``
    models posted writes: the stream only pays the issue window
    (``num_transfers * gap_cycles``, at least one cycle) while the lane
    reservations still land on every link of the route (a flood).
    """

    dst_gpu: int
    num_transfers: int = 4
    #: Cycles between consecutive issue slots.
    gap_cycles: float = 0.0
    wait: bool = True


@dataclass(frozen=True)
class Store:
    """A global-memory store (goes through the home L2 like a load)."""

    buffer: "DeviceBuffer"
    index: int
    value: int


@dataclass(frozen=True)
class SharedStore:
    """A store to on-SM shared memory.

    Shared memory is private to the SM and "the access path of the shared
    buffer is separate than the main memory access path" (Section III-A), so
    it causes no L2 traffic and costs a handful of cycles.
    """

    buffer: "DeviceBuffer"
    index: int
    value: float
    cost_cycles: float = 6.0


@dataclass(frozen=True)
class Compute(object):
    """Occupy the ALUs for ``cycles`` (the paper's dummy trig instructions)."""

    cycles: float


@dataclass(frozen=True)
class Fence:
    """A ``__threadfence()``; charges a fixed small cost."""


@dataclass(frozen=True)
class Sleep:
    """Advance the stream clock without using any resource."""

    cycles: float


@dataclass(frozen=True)
class ReadClock:
    """Return the stream's current clock (the CUDA ``clock()`` intrinsic)."""


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a single :class:`Access`."""

    value: int
    latency: float
    hit: bool
    remote: bool
    home_gpu: int

    @property
    def miss(self) -> bool:
        return not self.hit


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a :class:`ProbeSet` traversal."""

    latencies: List[float] = field(default_factory=list)
    hits: List[bool] = field(default_factory=list)
    total_latency: float = 0.0
    remote: bool = False

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def miss_count(self) -> int:
        return sum(1 for h in self.hits if not h)


@dataclass(frozen=True)
class LinkProbeResult:
    """Outcome of a :class:`LinkProbe` burst."""

    #: Per-transfer observed latency (RTT base + queueing + jitter).
    latencies: Tuple[float, ...] = ()
    #: Per-transfer pure queueing delay (no jitter; ground truth).
    waits: Tuple[float, ...] = ()
    total_latency: float = 0.0
    hops: int = 0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def median_latency(self) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[len(ordered) // 2]

    @property
    def max_wait(self) -> float:
        return max(self.waits) if self.waits else 0.0


@dataclass(frozen=True)
class EpochResult:
    """Outcome of a :class:`ProbeEpoch`: one entry per probed set."""

    #: Per-set tuples of per-line latencies, in probe order.
    set_latencies: Tuple[Tuple[float, ...], ...] = ()
    set_hits: Tuple[Tuple[bool, ...], ...] = ()
    #: Cycles from the epoch start to each set's first issue slot.
    set_starts: Tuple[float, ...] = ()
    #: Each set's traversal latency relative to its own start.
    set_totals: Tuple[float, ...] = ()
    total_latency: float = 0.0
    remote: bool = False

    @property
    def num_sets(self) -> int:
        return len(self.set_latencies)

    def miss_counts(self) -> List[int]:
        """Per-set miss counts (ground truth; attack code thresholds
        latencies instead)."""
        return [sum(1 for h in hs if not h) for hs in self.set_hits]
