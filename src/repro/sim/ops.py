"""Operation vocabulary yielded by kernel coroutines.

A kernel is a Python generator.  Each ``yield`` hands one operation to the
:class:`repro.sim.engine.Engine`, which executes it against the hardware
model, charges the stream's clock, and sends the result back into the
generator::

    def kernel(ctx):
        value, latency = yield Access(buf, index)      # __ldcg + clock()
        yield Compute(500)                             # dummy trig work
        yield SharedStore(times, slot, latency)        # stage into shared mem

The result types are:

========================  =============================================
op                        result sent back into the generator
========================  =============================================
:class:`Access`           ``AccessResult`` (value, latency, hit, ...)
:class:`ProbeSet`         ``ProbeResult`` (per-line latencies, ...)
:class:`ProbeEpoch`       ``EpochResult`` (per-set latencies, ...)
:class:`AccessEpoch`      ``EpochOutcome`` (columnar per-burst arrays, ...)
:class:`LinkProbe`        ``LinkProbeResult`` (per-transfer latencies, ...)
:class:`LinkEpoch`        ``LinkOutcome`` (columnar per-burst arrays, ...)
:class:`Store`            ``AccessResult`` (like :class:`Access`)
:class:`SharedStore`      ``None``
:class:`Compute`          ``None``
:class:`Fence`            ``None``
:class:`Sleep`            ``None``
:class:`ReadClock`        current stream clock in cycles (float)
========================  =============================================

The :class:`AccessEpoch` family is the batch-native path: instead of one
yield per probe, a kernel declares its whole access *plan* (bursts, idle
windows, repeat-until-deadline segments, round pacing) and the engine's
epoch cursor advances it in bulk, suspending only when another stream's
event (or a scheduled fault) interleaves.  See ``sim/epoch.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .process import DeviceBuffer

__all__ = [
    "Access",
    "ProbeSet",
    "ProbeEpoch",
    "AccessEpoch",
    "EpochBurst",
    "EpochIdle",
    "EpochRepeat",
    "LinkProbe",
    "LinkEpoch",
    "LinkBurst",
    "LinkFlood",
    "LinkPad",
    "Store",
    "SharedStore",
    "Compute",
    "Fence",
    "Sleep",
    "ReadClock",
    "AccessResult",
    "ProbeResult",
    "EpochResult",
    "EpochOutcome",
    "LinkProbeResult",
    "LinkOutcome",
]


@dataclass(frozen=True)
class Access:
    """A single load of one 8-byte word.

    ``index`` addresses the buffer as an array of int64 words, so a stride
    of one cache line (128 B) is 16 indices.

    By default the load models ``__ldcg()``: it bypasses the L1 and is
    serviced by the L2 of the GPU homing the physical page -- the paper
    uses ``__ldcg`` for exactly this, because an L1 hit on the attacker's
    own GPU would hide the remote L2's state.  ``through_l1=True`` models
    an ordinary load that consults the local L1 first.
    """

    buffer: "DeviceBuffer"
    index: int
    through_l1: bool = False


@dataclass(frozen=True)
class ProbeSet:
    """Traverse a whole eviction set in one operation.

    ``parallel=False`` models a dependent pointer chase (Algorithm 1/2):
    latencies add up.  ``parallel=True`` models a warp of threads touching
    all lines with overlapped latency (the covert-channel probe): the
    total cost is the slowest access plus per-access issue overhead.
    The cache-state effect (fills/evictions) is identical in both modes.
    """

    buffer: "DeviceBuffer"
    indices: Sequence[int]
    parallel: bool = False
    #: Cycles between consecutive issue slots in parallel mode.
    issue_gap: float = 4.0


@dataclass(frozen=True)
class ProbeEpoch:
    """Traverse many eviction sets back-to-back in one operation.

    The multi-set fast path of the memorygram prober: one epoch covers a
    spy block's whole sweep over its monitored sets, serviced as a single
    batched call against the hardware model (see
    :meth:`repro.hw.system.MultiGPUSystem.access_epoch` for the issue
    semantics).  The result reports each set's latencies plus its start
    offset within the epoch, so per-set samples can still be placed on
    the memorygram time axis.
    """

    buffer: "DeviceBuffer"
    sets: Sequence[Sequence[int]]
    parallel: bool = True
    #: Cycles between consecutive issue slots in parallel mode.
    issue_gap: float = 4.0


@dataclass(frozen=True)
class EpochBurst:
    """One batched multi-set traversal inside an :class:`AccessEpoch`.

    The epoch-native generalization of :class:`ProbeEpoch`: ``sets`` is a
    tuple of per-set word-index tuples over one buffer, traversed
    back-to-back with the same issue semantics (parallel: flat access
    ``p`` issues at ``start + p * issue_gap``; sequential: all accesses
    stamped at the burst start, latencies accumulate).  ``post_cycles``
    charges a fixed stream cost after the burst completes -- e.g. the
    covert spy's two shared-memory staging stores -- without a separate
    engine event.  Reuse ONE burst object across rounds: the flattened
    physical-address plan is cached by identity.
    """

    buffer: "DeviceBuffer"
    sets: Tuple[Tuple[int, ...], ...]
    parallel: bool = True
    #: Cycles between consecutive issue slots in parallel mode.
    issue_gap: float = 4.0
    #: Fixed cycles charged to the stream after the burst completes.
    post_cycles: float = 0.0

    @property
    def count(self) -> int:
        return sum(len(s) for s in self.sets)


@dataclass(frozen=True)
class EpochIdle:
    """Advance the epoch clock without touching any resource.

    ``cycles`` adds a relative delay; ``until`` (relative to the current
    *round* start) fast-forwards to an absolute point on the round's time
    axis -- ``clock = max(clock, round_start + until)`` -- which is how a
    trojan pads out the remainder of a bit slot in one step instead of a
    train of 200-cycle Compute chunks.  ``chunk`` makes the fast-forward
    accumulate in ``min(remaining, chunk)`` steps, reproducing a scalar
    wait loop's float arithmetic bit-for-bit (the clocks of both backends
    then agree exactly, not just to rounding error).
    """

    cycles: float = 0.0
    until: Optional[float] = None
    chunk: Optional[float] = None


@dataclass(frozen=True)
class EpochRepeat:
    """Repeat ``burst`` while ``clock + margin <= round_start + until``.

    The trojan's prime loop as a declarative segment: keep re-traversing
    the eviction sets until the next traversal could overrun the slot
    boundary (the ``margin`` models the kernel's own overrun guard).
    """

    burst: EpochBurst
    until: float
    margin: float = 0.0


@dataclass(frozen=True)
class AccessEpoch:
    """A whole access *plan*, advanced in bulk by the engine's epoch cursor.

    ``segments`` run in order once per round; ``rounds=None`` repeats until
    a termination condition fires.  Round-start checks reproduce the
    scalar prober loop exactly, in order:

    1. ``end_time`` (absolute): round starting at or past it ends the epoch.
    2. ``stop_flag`` (any sized container): first round that starts with it
       non-empty arms a grace deadline ``round_start + grace_cycles``.
    3. An armed grace deadline: round starting at or past it ends the epoch.

    ``period`` paces rounds on a fixed grid: after the segments finish,
    the clock pads forward to ``round_start + period`` (never backwards).
    ``record=False`` skips per-access result assembly (victim workloads:
    cache side effects and counters only).

    ``round_reads`` declares how many zero-latency clock reads the scalar
    kernel being mirrored performs at each round start (the prober's and
    spy's ``yield ReadClock()``).  The engine uses it to reconstruct the
    scalar event loop's FIFO order when several streams are queued at the
    *same* instant (e.g. trojans padded to one slot grid), so tied bursts
    land in the oracle's exact order.  Use 0 for plans with no scalar
    clock reads (victim traces, warm-up primes).
    """

    segments: Tuple[Union[EpochBurst, EpochIdle, EpochRepeat], ...]
    rounds: Optional[int] = 1
    period: Optional[float] = None
    end_time: Optional[float] = None
    stop_flag: Optional[Sequence] = None
    grace_cycles: float = 0.0
    record: bool = True
    round_reads: int = 1


@dataclass(frozen=True)
class LinkProbe:
    """Time a burst of peer-to-peer transfers over the NVLink route to
    ``dst_gpu``.

    The fabric-channel primitive (:mod:`repro.core.linkchannel`): it
    touches no cache sets -- each transfer rides the link route and comes
    back with a latency dominated by link serialization queueing, so the
    burst measures *link* contention and nothing else.

    ``wait=True`` models dependent round-trip reads: the stream clock
    advances to the last transfer's completion (a probe).  ``wait=False``
    models posted writes: the stream only pays the issue window
    (``num_transfers * gap_cycles``, at least one cycle) while the lane
    reservations still land on every link of the route (a flood).
    """

    dst_gpu: int
    num_transfers: int = 4
    #: Cycles between consecutive issue slots.
    gap_cycles: float = 0.0
    wait: bool = True


@dataclass(frozen=True)
class LinkBurst:
    """One timed :class:`LinkProbe`-equivalent burst inside a
    :class:`LinkEpoch`.

    Same fabric semantics as :class:`LinkProbe` (``wait=True`` dependent
    round-trips advance the clock to the last completion; ``wait=False``
    posted writes only pay the issue window) but serviced by the epoch
    cursor through the cached columnar fabric flow instead of a heap
    event per burst.  ``record=False`` skips latency assembly (a trojan's
    posted floods: lane reservations and counters only).
    """

    dst_gpu: int
    num_transfers: int = 4
    #: Cycles between consecutive issue slots.
    gap_cycles: float = 0.0
    wait: bool = True
    record: bool = False


@dataclass(frozen=True)
class LinkFlood:
    """A self-paced flood window inside a :class:`LinkEpoch`.

    One round of the scalar flooder loop as a declarative segment: fill a
    ``burst_cycles`` window with back-to-back posted transfers
    (``count = max(1, int(window / occupancy_per_transfer))``, window
    clipped to the epoch's remaining time), then hold the stream for the
    paced remainder ``count * occupancy - count * gap_cycles`` so the
    flood sustains its calibrated duty cycle instead of racing ahead.
    """

    dst_gpu: int
    #: Calibrated cycles of link occupancy bought per posted transfer.
    occupancy_per_transfer: float
    burst_cycles: float = 2500.0
    #: Cycles between consecutive issue slots.
    gap_cycles: float = 1.0


@dataclass(frozen=True)
class LinkPad:
    """Pad the stream to an absolute point on the round's time axis.

    The trojan's slot alignment: ``clock = max(clock, round_start +
    until)``, mirroring the scalar kernel's single clock read followed by
    one ``Sleep`` of the remainder (no re-check read after the sleep --
    unlike :class:`EpochIdle`'s chunked wait loop, so the suspension keys
    of both backends line up transfer-for-transfer).
    """

    until: float


@dataclass(frozen=True)
class LinkEpoch:
    """A whole fabric-channel *plan*, advanced in bulk by the engine.

    The NVLink counterpart of :class:`AccessEpoch`: ``segments`` run in
    order once per round; ``rounds=None`` repeats until ``end_time`` (or
    ``duration_cycles`` past the epoch's begin) stops the plan at a round
    start.  ``period`` pads each round out to a fixed grid, and
    ``round_reads`` plays the same FIFO-order role as on
    :class:`AccessEpoch` (the scalar kernels' per-round ``ReadClock``).
    The route, peer-access check, and per-hop serialization state are
    resolved once per epoch and reused across every burst.
    """

    segments: Tuple[Union["LinkBurst", "LinkFlood", "LinkPad", EpochIdle], ...]
    rounds: Optional[int] = 1
    period: Optional[float] = None
    end_time: Optional[float] = None
    #: Convenience terminator: ``end_time = begin + duration_cycles``.
    duration_cycles: Optional[float] = None
    round_reads: int = 1


@dataclass(frozen=True)
class Store:
    """A global-memory store (goes through the home L2 like a load)."""

    buffer: "DeviceBuffer"
    index: int
    value: int


@dataclass(frozen=True)
class SharedStore:
    """A store to on-SM shared memory.

    Shared memory is private to the SM and "the access path of the shared
    buffer is separate than the main memory access path" (Section III-A), so
    it causes no L2 traffic and costs a handful of cycles.
    """

    buffer: "DeviceBuffer"
    index: int
    value: float
    cost_cycles: float = 6.0


@dataclass(frozen=True)
class Compute(object):
    """Occupy the ALUs for ``cycles`` (the paper's dummy trig instructions)."""

    cycles: float


@dataclass(frozen=True)
class Fence:
    """A ``__threadfence()``; charges a fixed small cost."""


@dataclass(frozen=True)
class Sleep:
    """Advance the stream clock without using any resource."""

    cycles: float


@dataclass(frozen=True)
class ReadClock:
    """Return the stream's current clock (the CUDA ``clock()`` intrinsic)."""


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a single :class:`Access`."""

    value: int
    latency: float
    hit: bool
    remote: bool
    home_gpu: int

    @property
    def miss(self) -> bool:
        return not self.hit


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a :class:`ProbeSet` traversal."""

    latencies: List[float] = field(default_factory=list)
    hits: List[bool] = field(default_factory=list)
    total_latency: float = 0.0
    remote: bool = False

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def miss_count(self) -> int:
        return sum(1 for h in self.hits if not h)


@dataclass(frozen=True)
class LinkProbeResult:
    """Outcome of a :class:`LinkProbe` burst."""

    #: Per-transfer observed latency (RTT base + queueing + jitter).
    latencies: Tuple[float, ...] = ()
    #: Per-transfer pure queueing delay (no jitter; ground truth).
    waits: Tuple[float, ...] = ()
    total_latency: float = 0.0
    hops: int = 0

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0

    @property
    def median_latency(self) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        return ordered[len(ordered) // 2]

    @property
    def max_wait(self) -> float:
        return max(self.waits) if self.waits else 0.0


@dataclass(frozen=True)
class EpochResult:
    """Outcome of a :class:`ProbeEpoch`: one entry per probed set."""

    #: Per-set tuples of per-line latencies, in probe order.
    set_latencies: Tuple[Tuple[float, ...], ...] = ()
    set_hits: Tuple[Tuple[bool, ...], ...] = ()
    #: Cycles from the epoch start to each set's first issue slot.
    set_starts: Tuple[float, ...] = ()
    #: Each set's traversal latency relative to its own start.
    set_totals: Tuple[float, ...] = ()
    total_latency: float = 0.0
    remote: bool = False

    @property
    def num_sets(self) -> int:
        return len(self.set_latencies)

    def miss_counts(self) -> List[int]:
        """Per-set miss counts (ground truth; attack code thresholds
        latencies instead)."""
        return [sum(1 for h in hs if not h) for hs in self.set_hits]


class EpochOutcome:
    """Columnar outcome of an :class:`AccessEpoch`.

    One row per *recorded burst* (every burst of a ``record=True`` epoch,
    in execution order): ``starts[b]`` is the burst's absolute start time,
    ``latencies[b]`` / ``hits[b]`` its per-access results in flat issue
    order, ``totals[b]`` its traversal latency.  All recorded bursts of
    one epoch share a layout, described once by ``set_counts`` /
    ``set_offsets`` (flat slots per set) and ``set_starts`` (issue-slot
    offset of each set's first access, in cycles from the burst start).
    """

    __slots__ = (
        "starts", "latencies", "hits", "totals",
        "set_counts", "set_offsets", "set_starts",
        "remote", "bursts", "accesses", "begin", "end",
    )

    def __init__(
        self,
        starts: np.ndarray,
        latencies: np.ndarray,
        hits: np.ndarray,
        totals: np.ndarray,
        set_counts: np.ndarray,
        set_offsets: np.ndarray,
        set_starts: np.ndarray,
        remote: bool,
        bursts: int,
        accesses: int,
        begin: float,
        end: float,
    ) -> None:
        self.starts = starts
        self.latencies = latencies
        self.hits = hits
        self.totals = totals
        self.set_counts = set_counts
        self.set_offsets = set_offsets
        self.set_starts = set_starts
        self.remote = remote
        #: Bursts serviced (including unrecorded ones).
        self.bursts = bursts
        #: Accesses serviced (including unrecorded bursts).
        self.accesses = accesses
        self.begin = begin
        self.end = end

    @property
    def num_recorded(self) -> int:
        return int(self.starts.shape[0])

    @property
    def num_sets(self) -> int:
        return int(self.set_counts.shape[0])

    def medians(self) -> np.ndarray:
        """Per-burst median access latency (matches ``sorted(x)[len//2]``)."""
        if self.latencies.size == 0:
            return np.zeros(self.num_recorded, dtype=np.float64)
        width = self.latencies.shape[1]
        return np.sort(self.latencies, axis=1)[:, width // 2]

    def miss_grid(self) -> np.ndarray:
        """Ground-truth ``(bursts, sets)`` miss counts from the hit flags."""
        rows = self.hits.shape[0]
        misses = ~self.hits
        if self.num_sets == 0 or misses.size == 0:
            return np.zeros((rows, self.num_sets), dtype=np.int64)
        return np.add.reduceat(
            misses.astype(np.int64), self.set_offsets, axis=1
        )


class LinkOutcome:
    """Columnar outcome of a :class:`LinkEpoch`.

    One row per *recorded* :class:`LinkBurst`, in execution order:
    ``starts[b]`` is the burst's absolute issue time, ``latencies[b]``
    its per-transfer observed latencies in issue order.  All recorded
    bursts of one epoch share a width (enforced by the cursor), so the
    spy's per-slot medians fall out of one sort.
    """

    __slots__ = ("starts", "latencies", "bursts", "transfers", "begin", "end")

    def __init__(
        self,
        starts: np.ndarray,
        latencies: np.ndarray,
        bursts: int,
        transfers: int,
        begin: float,
        end: float,
    ) -> None:
        self.starts = starts
        self.latencies = latencies
        #: Bursts serviced (including unrecorded floods).
        self.bursts = bursts
        #: Transfers serviced (including unrecorded floods).
        self.transfers = transfers
        self.begin = begin
        self.end = end

    @property
    def num_recorded(self) -> int:
        return int(self.starts.shape[0])

    def medians(self) -> np.ndarray:
        """Per-burst median latency (matches ``sorted(x)[len // 2]``)."""
        if self.latencies.size == 0:
            return np.zeros(self.num_recorded, dtype=np.float64)
        width = self.latencies.shape[1]
        return np.sort(self.latencies, axis=1)[:, width // 2]
