"""Epoch cursor: bulk advancement of :class:`~repro.sim.ops.AccessEpoch`.

The engine's batch-native execution core.  A kernel that yields an
``AccessEpoch`` hands the engine its whole access plan -- bursts, idle
windows, repeat-until-deadline prime loops, round pacing -- and the
engine parks a cursor on the stream instead of bouncing one heap event
per probe.  Each time the stream reaches the head of the event heap the
cursor *resumes*: it services consecutive bursts through the vectorized
hardware cores until the next foreign event (another stream's op, the
``run(until=...)`` horizon, or a scheduled fault) would interleave, then
suspends with the stream re-queued at its advanced clock.

Ordering stays identical to scalar dispatch because bursts execute
atomically at their start time (the atomic-probe convention): the cursor
services a burst only while its start precedes every other pending
event, so the global op-start order -- the only order the convention
defines -- is unchanged.  Chaos faults are fences: the resume deadline
is capped at the injector's next due time, so a burst starting after a
scheduled fault is serviced only after the fault lands.  Telemetry fires
once per resume (epoch boundaries), not per access.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, TYPE_CHECKING

import numpy as np

from ..errors import PeerAccessError, SimulationError
from ..hw.interconnect import SMALL_BATCH, FabricFlow
from ..hw.occupancy import multi_server_waits_scalar
from .ops import (
    AccessEpoch,
    Compute,
    EpochBurst,
    EpochIdle,
    EpochOutcome,
    EpochRepeat,
    LinkBurst,
    LinkEpoch,
    LinkFlood,
    LinkOutcome,
    LinkPad,
    ProbeEpoch,
    ProbeSet,
    Sleep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.system import MultiGPUSystem
    from .engine import StreamHandle

__all__ = ["EpochCursor", "LinkEpochCursor", "epochify"]

_INF = float("inf")


class EpochCursor:
    """Resumable execution state of one in-flight :class:`AccessEpoch`."""

    __slots__ = (
        "op", "handle", "system", "begin", "clock",
        "round_index", "round_start", "in_round", "seg_index", "stop_at",
        "idle_pause", "lead", "last_advance", "key_lead", "key_since",
        "bursts", "accesses", "scalar_bursts", "remote",
        "resumed_accesses", "resumed_bursts",
        "service_cycles", "suspends",
        "_layout", "_starts", "_lats", "_hits", "_totals",
    )

    def __init__(
        self,
        op: AccessEpoch,
        handle: "StreamHandle",
        system: "MultiGPUSystem",
        begin: float,
    ) -> None:
        self.op = op
        self.handle = handle
        self.system = system
        self.begin = begin
        self.clock = begin
        self.round_index = 0
        self.round_start = begin
        self.in_round = False
        self.seg_index = 0
        self.stop_at: Optional[float] = None
        #: Marks the (round, segment) of a chunked idle whose final chunk
        #: already suspended once, so the resume completes it (progress
        #: guarantee) instead of pausing again.
        self.idle_pause = None
        #: Zero-latency clock reads the scalar twin has pending before its
        #: next resource op, and the start time of its last clock-advancing
        #: op -- together the FIFO tie key the scalar engine would have
        #: assigned this stream's queued event (see Engine._push).
        self.lead = 0
        self.last_advance = begin
        self.key_lead = 0
        self.key_since = begin
        self.bursts = 0
        self.accesses = 0
        self.scalar_bursts = 0
        self.remote = False
        #: Work serviced by the latest resume (per-resume stats/telemetry).
        self.resumed_accesses = 0
        self.resumed_bursts = 0
        #: Pure observers for the epoch profiler: sim-cycles spent inside
        #: burst service, and how many times the cursor suspended.  Never
        #: read by the clock arithmetic.
        self.service_cycles = 0.0
        self.suspends = 0
        self._layout = None
        self._starts: List[float] = []
        self._lats: List[np.ndarray] = []
        self._hits: List[np.ndarray] = []
        self._totals: List[float] = []

    # ------------------------------------------------------------------
    def resume(self, now: float, deadline: float) -> bool:
        """Advance until the epoch finishes or ``deadline`` interleaves.

        ``now`` is the heap time the stream was popped at (adopted if the
        cursor's clock lags it -- e.g. after a preemption fault rewrote
        the queued clock).  Returns ``True`` when the epoch is complete;
        otherwise the cursor's clock is where the stream must re-queue.

        A burst may start exactly at ``deadline`` only if nothing was
        serviced yet this resume: the stream was popped first at that
        time, so it owns the tie -- exactly the scalar engine's FIFO
        tie-break, where the re-pushed op would get a later sequence
        number than the already-queued foreign event.
        """
        op = self.op
        clock = self.clock
        if now > clock:
            clock = now
        entry = clock
        serviced = False
        self.resumed_accesses = 0
        self.resumed_bursts = 0
        segments = op.segments
        num_segments = len(segments)
        service = self._service
        # ``lead``/``last_advance`` mirror the scalar twin's event-queue
        # footprint: how many zero-latency clock reads it has pending, and
        # when its last clock-advancing op started (= when its queued heap
        # entry was pushed).  They become the suspension tie key so that
        # streams parked at the same instant pop in the oracle's order.
        lead = self.lead
        last_advance = self.last_advance
        while True:
            if not self.in_round:
                # Round-start checks observe externally mutated state (the
                # stop flag), so they run only while this stream still owns
                # the simulation clock -- past the deadline the cursor
                # suspends and re-checks after the foreign event has landed,
                # exactly when the scalar loop would re-check.
                if clock >= deadline and (serviced or clock > entry):
                    return self._suspend(
                        clock, lead, lead + op.round_reads, last_advance
                    )
                if op.rounds is not None and self.round_index >= op.rounds:
                    break
                if op.end_time is not None and clock >= op.end_time:
                    break
                if (
                    op.stop_flag is not None
                    and self.stop_at is None
                    and len(op.stop_flag)
                ):
                    self.stop_at = clock + op.grace_cycles
                if self.stop_at is not None and clock >= self.stop_at:
                    break
                self.in_round = True
                self.seg_index = 0
                self.round_start = clock
                lead += op.round_reads
            while self.seg_index < num_segments:
                seg = segments[self.seg_index]
                kind = type(seg)
                if kind is EpochBurst:
                    if clock >= deadline and (serviced or clock > entry):
                        return self._suspend(clock, lead, lead, last_advance)
                    start = clock
                    clock = start + service(seg, start)
                    if seg.post_cycles:
                        last_advance = clock
                        clock += seg.post_cycles
                    else:
                        last_advance = start
                    lead = 0
                    serviced = True
                elif kind is EpochIdle:
                    if seg.cycles:
                        last_advance = clock
                        clock += seg.cycles
                        lead = 0
                    if seg.until is not None:
                        target = self.round_start + seg.until
                        chunk = seg.chunk
                        if chunk is None:
                            if target > clock:
                                last_advance = clock
                                clock = target
                                lead = 0
                        else:
                            # Step like the scalar wait loop so the two
                            # backends' clocks agree bit-for-bit; each
                            # evaluation is one clock read in the twin.
                            here = (self.round_index, self.seg_index)
                            while True:
                                lead += 1
                                remaining = target - clock
                                if remaining <= 0:
                                    break
                                if remaining <= chunk and self.idle_pause != here:
                                    # Final chunk: the twin pushes its last
                                    # wait Compute here, and that push's FIFO
                                    # slot is what decides pop order when
                                    # several streams re-converge on a common
                                    # grid (trojans padded to one slot edge).
                                    # Suspend once so this cursor's re-push
                                    # lands in the same relative order.
                                    self.idle_pause = here
                                    return self._suspend(
                                        clock, lead - 1, lead, last_advance
                                    )
                                last_advance = clock
                                clock += remaining if remaining < chunk else chunk
                                lead = 0
                            if self.idle_pause == here:
                                self.idle_pause = None
                elif kind is EpochRepeat:
                    burst = seg.burst
                    target = self.round_start + seg.until
                    post = burst.post_cycles
                    while True:
                        lead += 1  # the twin's margin-check clock read
                        if clock + seg.margin > target:
                            break
                        if clock >= deadline and (serviced or clock > entry):
                            # ``lead - 1``: the margin check re-runs on
                            # resume; the key still counts it.
                            return self._suspend(clock, lead - 1, lead, last_advance)
                        start = clock
                        clock = start + service(burst, start)
                        if post:
                            last_advance = clock
                            clock += post
                        else:
                            last_advance = start
                        lead = 0
                        serviced = True
                else:
                    raise SimulationError(
                        f"AccessEpoch segment {seg!r} is not a burst/idle/repeat"
                    )
                self.seg_index += 1
            if op.period is not None:
                # ``period - elapsed`` then add: the scalar path's pacing
                # arithmetic, kept verbatim for bitwise clock equality.  A
                # round-read kernel reads the clock to compute the pad.
                if op.round_reads:
                    lead += 1
                remaining = op.period - (clock - self.round_start)
                if remaining > 0:
                    last_advance = clock
                    clock += remaining
                    lead = 0
            self.round_index += 1
            self.in_round = False
        self.clock = clock
        self.lead = lead
        self.last_advance = last_advance
        return True

    def _suspend(
        self, clock: float, lead: int, key_lead: int, last_advance: float
    ) -> bool:
        self.clock = clock
        self.lead = lead
        self.key_lead = key_lead
        self.key_since = last_advance
        self.last_advance = last_advance
        self.suspends += 1
        return False

    def _service(self, burst: EpochBurst, clock: float) -> float:
        latencies, hits, total, remote, scalar = self.system.service_burst(
            self.handle.process,
            burst.buffer,
            burst.sets,
            self.handle.gpu_id,
            clock,
            parallel=burst.parallel,
            issue_gap=burst.issue_gap,
        )
        self.bursts += 1
        self.resumed_bursts += 1
        # ``latencies`` is a numpy row from the vector core or a plain
        # list from the fused small-burst core; rows are kept as-is and
        # stacked once in :meth:`take_outcome`.
        count = len(latencies)
        self.accesses += count
        self.resumed_accesses += count
        self.service_cycles += total
        if scalar:
            self.scalar_bursts += 1
        if remote:
            self.remote = True
        if self.op.record:
            if self._layout is None:
                self._layout = self.system.epoch_layout(
                    burst.buffer, burst.sets, burst.parallel, burst.issue_gap
                )
            elif count != (len(self._lats[0]) if self._lats else count):
                raise SimulationError(
                    "recorded epoch bursts must share one set layout; "
                    "use record=False for heterogeneous plans"
                )
            self._starts.append(clock)
            self._lats.append(latencies)
            self._hits.append(hits)
            self._totals.append(total)
        return total

    def take_outcome(self) -> EpochOutcome:
        """Assemble the columnar result (call once, after completion)."""
        if self._layout is not None:
            counts, offsets, set_starts = self._layout
        else:
            counts = np.empty(0, dtype=np.int64)
            offsets = np.empty(0, dtype=np.int64)
            set_starts = np.empty(0, dtype=np.float64)
        if self._starts:
            starts = np.asarray(self._starts, dtype=np.float64)
            latencies = np.vstack(self._lats)
            hits = np.vstack(self._hits)
            totals = np.asarray(self._totals, dtype=np.float64)
        else:
            width = int(counts.sum())
            starts = np.empty(0, dtype=np.float64)
            latencies = np.empty((0, width), dtype=np.float64)
            hits = np.empty((0, width), dtype=bool)
            totals = np.empty(0, dtype=np.float64)
        return EpochOutcome(
            starts=starts,
            latencies=latencies,
            hits=hits,
            totals=totals,
            set_counts=counts,
            set_offsets=offsets,
            set_starts=set_starts,
            remote=self.remote,
            bursts=self.bursts,
            accesses=self.accesses,
            begin=self.begin,
            end=self.clock,
        )


class LinkEpochCursor:
    """Resumable execution state of one in-flight :class:`LinkEpoch`.

    The fabric-channel sibling of :class:`EpochCursor`: same suspension
    machinery (deadline fences, ``lead``/``last_advance`` FIFO tie keys,
    one-shot pad pauses), but the serviced resource is the NVLink fabric
    via :meth:`~repro.hw.system.MultiGPUSystem.service_link_burst` over a
    cached :class:`~repro.hw.interconnect.FabricFlow`.  Peer access is
    validated once at construction; the flow itself is re-fetched per
    burst through :meth:`~repro.hw.interconnect.Interconnect.route_state`
    so link flaps, degradations and lane reassignments landing between
    resumes are picked up (chaos events cap the resume deadline, so no
    fabric mutation can land *inside* a resume).
    """

    __slots__ = (
        "op", "handle", "system", "begin", "clock",
        "round_index", "round_start", "in_round", "seg_index", "stop_time",
        "idle_pause", "lead", "last_advance", "key_lead", "key_since",
        "bursts", "accesses", "scalar_bursts", "remote",
        "resumed_accesses", "resumed_bursts",
        "service_cycles", "suspends",
        "_width", "_steps", "_fast", "_fast_seg", "_starts", "_lats",
    )

    def __init__(
        self,
        op: LinkEpoch,
        handle: "StreamHandle",
        system: "MultiGPUSystem",
        begin: float,
    ) -> None:
        self.op = op
        self.handle = handle
        self.system = system
        self.begin = begin
        self.clock = begin
        self.round_index = 0
        self.round_start = begin
        self.in_round = False
        self.seg_index = 0
        #: Absolute stop time resolved once: ``end_time`` or the begin
        #: plus ``duration_cycles`` (the flooder's horizon).
        self.stop_time: Optional[float] = op.end_time
        if op.duration_cycles is not None:
            horizon = begin + op.duration_cycles
            if self.stop_time is None or horizon < self.stop_time:
                self.stop_time = horizon
        self.idle_pause = None
        self.lead = 0
        self.last_advance = begin
        self.key_lead = 0
        self.key_since = begin
        self.bursts = 0
        #: Transfers serviced (the link analogue of epoch accesses).
        self.accesses = 0
        self.scalar_bursts = 0
        self.remote = True
        self.resumed_accesses = 0
        self.resumed_bursts = 0
        self.service_cycles = 0.0
        self.suspends = 0
        self._width: Optional[int] = None
        #: ``arange(count) * gap`` issue-offset arrays, keyed by
        #: (count, gap) -- stable across rounds for fixed-size bursts.
        self._steps = {}
        #: Fused small-burst closures keyed by
        #: (dst, count, gap, wait, record); see :meth:`_build_fast_burst`.
        #: Used by the flood path, whose burst size varies per round.
        self._fast = {}
        #: Per-segment closure cache for :class:`LinkBurst` segments,
        #: whose shape is static: ``False`` marks an ineligible (wide)
        #: burst, ``None`` an unbuilt one.
        self._fast_seg: List = [None] * len(op.segments)
        self._starts: List[float] = []
        self._lats: List[np.ndarray] = []
        exec_gpu = handle.gpu_id
        process = handle.process
        for seg in op.segments:
            dst = getattr(seg, "dst_gpu", None)
            if dst is None:
                continue
            if dst == exec_gpu:
                raise PeerAccessError("link probes need a remote destination GPU")
            if not process.has_peer_access(exec_gpu, dst):
                raise PeerAccessError(
                    f"process {process.name!r} has no peer access from GPU "
                    f"{exec_gpu} to GPU {dst}"
                )

    # ------------------------------------------------------------------
    def resume(self, now: float, deadline: float) -> bool:
        """Advance until the epoch finishes or ``deadline`` interleaves.

        Same contract as :meth:`EpochCursor.resume`: returns ``True`` on
        completion, otherwise the cursor clock is the re-queue time and
        ``key_lead``/``key_since`` carry the scalar twin's FIFO tie key.
        """
        op = self.op
        clock = self.clock
        if now > clock:
            clock = now
        entry = clock
        serviced = False
        self.resumed_accesses = 0
        self.resumed_bursts = 0
        segments = op.segments
        num_segments = len(segments)
        service = self._service
        fast_seg = self._fast_seg
        lead = self.lead
        last_advance = self.last_advance
        while True:
            if not self.in_round:
                if clock >= deadline and (serviced or clock > entry):
                    return self._suspend(
                        clock, lead, lead + op.round_reads, last_advance
                    )
                if op.rounds is not None and self.round_index >= op.rounds:
                    break
                if self.stop_time is not None and clock >= self.stop_time:
                    break
                self.in_round = True
                self.seg_index = 0
                self.round_start = clock
                lead += op.round_reads
            while self.seg_index < num_segments:
                seg = segments[self.seg_index]
                kind = type(seg)
                if kind is LinkBurst:
                    if clock >= deadline and (serviced or clock > entry):
                        return self._suspend(clock, lead, lead, last_advance)
                    start = clock
                    seg_at = self.seg_index
                    fast = fast_seg[seg_at]
                    if fast is None:
                        count = int(seg.num_transfers)
                        fast = False
                        if count < SMALL_BATCH:
                            fast = self._build_fast_burst(
                                seg.dst_gpu, count, float(seg.gap_cycles),
                                seg.wait, seg.record,
                            )
                        fast_seg[seg_at] = fast
                    outcome = fast(start) if fast is not False else None
                    if outcome is None:
                        clock = start + service(
                            seg.dst_gpu, seg.num_transfers, seg.gap_cycles,
                            seg.wait, seg.record, start,
                        )
                    else:
                        latencies, total = outcome
                        count = seg.num_transfers
                        self.bursts += 1
                        self.resumed_bursts += 1
                        self.accesses += count
                        self.resumed_accesses += count
                        self.service_cycles += total
                        if seg.record:
                            width = self._width
                            if width is None:
                                self._width = count
                            elif count != width:
                                raise SimulationError(
                                    "recorded link-epoch bursts must share "
                                    "one width; use record=False for "
                                    "heterogeneous plans"
                                )
                            self._starts.append(start)
                            self._lats.append(latencies)
                        clock = start + total
                    last_advance = start
                    lead = 0
                    serviced = True
                elif kind is LinkFlood:
                    if clock >= deadline and (serviced or clock > entry):
                        return self._suspend(clock, lead, lead, last_advance)
                    # One scalar flooder iteration, arithmetic verbatim:
                    # size the posted burst to the remaining window, then
                    # hold the paced remainder of its lane reservation.
                    if self.stop_time is not None:
                        window = min(seg.burst_cycles, self.stop_time - clock)
                    else:
                        window = seg.burst_cycles
                    count = max(1, int(window / seg.occupancy_per_transfer))
                    start = clock
                    clock = start + service(
                        seg.dst_gpu, count, seg.gap_cycles, False, False, start
                    )
                    last_advance = start
                    lead = 0
                    serviced = True
                    hold = max(
                        count * seg.occupancy_per_transfer
                        - count * seg.gap_cycles,
                        0.0,
                    )
                    if hold > 0.0:
                        last_advance = clock
                        clock += hold
                        lead = 0
                elif kind is LinkPad:
                    # The trojan's slot alignment: one clock read, one
                    # sleep of the remainder, no re-check read after it.
                    target = self.round_start + seg.until
                    here = (self.round_index, self.seg_index)
                    lead += 1
                    if target > clock:
                        if self.idle_pause != here:
                            # The twin pushes its pad Sleep here; suspend
                            # once so this cursor's re-push takes the same
                            # FIFO slot when streams converge on a common
                            # slot grid (see EpochIdle's chunked wait).
                            self.idle_pause = here
                            return self._suspend(
                                clock, lead - 1, lead, last_advance
                            )
                        last_advance = clock
                        clock += target - clock
                        lead = 0
                    if self.idle_pause == here:
                        self.idle_pause = None
                elif kind is EpochIdle:
                    if seg.cycles:
                        last_advance = clock
                        clock += seg.cycles
                        lead = 0
                    if seg.until is not None:
                        target = self.round_start + seg.until
                        if target > clock:
                            last_advance = clock
                            clock = target
                            lead = 0
                else:
                    raise SimulationError(
                        f"LinkEpoch segment {seg!r} is not a "
                        "burst/flood/pad/idle"
                    )
                self.seg_index += 1
            if op.period is not None:
                if op.round_reads:
                    lead += 1
                remaining = op.period - (clock - self.round_start)
                if remaining > 0:
                    last_advance = clock
                    clock += remaining
                    lead = 0
            self.round_index += 1
            self.in_round = False
        self.clock = clock
        self.lead = lead
        self.last_advance = last_advance
        return True

    def _suspend(
        self, clock: float, lead: int, key_lead: int, last_advance: float
    ) -> bool:
        self.clock = clock
        self.lead = lead
        self.key_lead = key_lead
        self.key_since = last_advance
        self.last_advance = last_advance
        self.suspends += 1
        return False

    def _build_fast_burst(
        self, dst_gpu: int, count: int, gap: float, wait: bool, record: bool
    ):
        """Fused small-burst service closure for one burst shape.

        Inlines the whole ``service_link_burst`` + ``advance_batch_small``
        stack -- route revalidation, lane walk, jitter, latency math, byte
        counters -- into one call frame with every constant pre-bound, the
        link analogue of the fused L2 small-burst core.  The closure
        returns ``(latencies, total)``, or ``None`` to fall back to the
        generic path whenever a hook is attached (tracer, metrics, DVFS
        latency scaling) or the flow is not a plain :class:`FabricFlow`
        (lane-partitioned fabrics shape per burst) -- exactly the cases
        that need per-burst emission or extra arithmetic.  Each float
        expression mirrors the generic path, so results stay bitwise.
        """
        system = self.system
        handle = self.handle
        exec_gpu = handle.gpu_id
        pid = handle.process.pid
        timing = system.spec.timing
        link_rtt = timing.remote_l2_hit - timing.local_l2_hit
        jitter_amp = timing.jitter_remote_hit
        burst_bytes = count * system.spec.gpu.cache.line_size
        counters_exec = system.gpus[exec_gpu].counters
        counters_dst = system.gpus[dst_gpu].counters
        pool = system._jitter
        steps = [index * gap for index in range(count)]
        indices = range(count)
        lane_walk = multi_server_waits_scalar
        two = count == 2

        def run(now: float):
            inter = system.interconnect
            if (
                system.tracer is not None
                or inter.tracer is not None
                or inter.metrics is not None
                or system._latency_scale is not None
            ):
                return None
            flow = inter.route_state(exec_gpu, dst_gpu, pid)
            if type(flow) is not FabricFlow:
                return None
            transfers = inter._transfers
            queued = inter._queued_cycles
            busy_cycles = inter._busy_cycles
            if two and flow.hops == 1:
                lane_state = flow.lanes[0]
                if len(lane_state) == 2:
                    # Pair-probe shape (the linkgram sweep): unroll the
                    # 2-lane/2-request least-busy walk.  Expressions track
                    # multi_server_waits_scalar exactly: lane sort, consume
                    # vs chain branch, pairwise exit sort.
                    edge = flow.edges[0]
                    serialization = flow.serialization[0]
                    lane0 = lane_state[0]
                    lane1 = lane_state[1]
                    if lane0 > lane1:
                        lane0, lane1 = lane1, lane0
                    stamp1 = now + gap
                    start = now if now >= lane0 else lane0
                    wait0 = start - now
                    depart0 = start + serialization
                    if lane1 <= depart0:
                        start = stamp1 if stamp1 >= lane1 else lane1
                        wait1 = start - stamp1
                        depart1 = start + serialization
                        if depart0 > depart1:
                            lane_state[0] = depart1
                            lane_state[1] = depart0
                        else:
                            lane_state[0] = depart0
                            lane_state[1] = depart1
                    else:
                        wait1 = depart0 - stamp1
                        if wait1 < 0.0:
                            wait1 = 0.0
                        depart1 = stamp1 + wait1 + serialization
                        if lane1 > depart1:
                            lane_state[0] = depart1
                            lane_state[1] = lane1
                        else:
                            lane_state[0] = lane1
                            lane_state[1] = depart1
                    transfers[edge] += 2
                    queued[edge] += wait0 + wait1
                    busy_cycles[edge] += serialization * 2
                    pad = flow.hop_pad
                    if pad:
                        wait0 += pad
                        wait1 += pad
                    position = pool._pos
                    if position + 2 <= pool._block:
                        draws = pool._buf[position : position + 2].tolist()
                        pool._pos = position + 2
                    else:
                        draws = pool.take_list(2)
                    latencies = None
                    if wait or record:
                        lat0 = link_rtt + wait0 + jitter_amp * draws[0]
                        lat1 = link_rtt + wait1 + jitter_amp * draws[1]
                        latencies = [
                            lat0 if lat0 > 1.0 else 1.0,
                            lat1 if lat1 > 1.0 else 1.0,
                        ]
                    if wait:
                        total = latencies[0]
                        candidate = gap + latencies[1]
                        if candidate > total:
                            total = candidate
                    else:
                        total = 2 * gap
                        if total < 1.0:
                            total = 1.0
                    counters_exec.nvlink_bytes_in += burst_bytes
                    counters_dst.nvlink_bytes_out += burst_bytes
                    return latencies, total
            stamps = [now + step for step in steps]
            if flow.hops == 1:
                # Direct link: the per-hop waits ARE the extras, so the
                # next-hop stamp roll and the extras accumulator drop out.
                edge = flow.edges[0]
                serialization = flow.serialization[0]
                lane_state = flow.lanes[0]
                extras, new_busy = lane_walk(lane_state, stamps, serialization)
                lane_state[:] = new_busy
                transfers[edge] += count
                hop_wait = 0.0
                for wait_cycles in extras:
                    hop_wait += wait_cycles
                queued[edge] += hop_wait
                busy_cycles[edge] += serialization * count
            else:
                extras = [0.0] * count
                edges = flow.edges
                serialization_by_hop = flow.serialization
                lanes_by_hop = flow.lanes
                for hop in range(flow.hops):
                    edge = edges[hop]
                    serialization = serialization_by_hop[hop]
                    waits, new_busy = lane_walk(
                        lanes_by_hop[hop], stamps, serialization
                    )
                    lanes_by_hop[hop][:] = new_busy
                    transfers[edge] += count
                    hop_wait = 0.0
                    for index in indices:
                        wait_cycles = waits[index]
                        hop_wait += wait_cycles
                        extras[index] += wait_cycles
                        stamps[index] += wait_cycles + serialization
                    queued[edge] += hop_wait
                    busy_cycles[edge] += serialization * count
            pad = flow.hop_pad
            if pad:
                for index in indices:
                    extras[index] += pad
            position = pool._pos
            if position + count <= pool._block:
                draws = pool._buf[position : position + count].tolist()
                pool._pos = position + count
            else:
                draws = pool.take_list(count)
            latencies = None
            if wait or record:
                latencies = [0.0] * count
                for index in indices:
                    latency = link_rtt + extras[index] + jitter_amp * draws[index]
                    latencies[index] = latency if latency > 1.0 else 1.0
            if wait:
                total = steps[0] + latencies[0]
                for index in indices:
                    candidate = steps[index] + latencies[index]
                    if candidate > total:
                        total = candidate
            else:
                total = count * gap
                if total < 1.0:
                    total = 1.0
            counters_exec.nvlink_bytes_in += burst_bytes
            counters_dst.nvlink_bytes_out += burst_bytes
            return latencies, total

        return run

    def _service(
        self,
        dst_gpu: int,
        num_transfers: int,
        gap_cycles: float,
        wait: bool,
        record: bool,
        clock: float,
    ) -> float:
        system = self.system
        count = int(num_transfers)
        gap = float(gap_cycles)
        serviced = None
        if count < SMALL_BATCH:
            key = (dst_gpu, count, gap, wait, record)
            fast = self._fast.get(key)
            if fast is None:
                fast = self._build_fast_burst(dst_gpu, count, gap, wait, record)
                self._fast[key] = fast
            serviced = fast(clock)
        if serviced is None:
            handle = self.handle
            steps = self._steps.get((count, gap))
            if steps is None:
                # Plain-list offsets below the small-batch threshold steer
                # service_link_burst down the pure-Python fabric walk.
                if count < SMALL_BATCH:
                    steps = [index * gap for index in range(count)]
                else:
                    steps = np.arange(count, dtype=np.float64) * gap
                self._steps[(count, gap)] = steps
            flow = system.interconnect.route_state(
                handle.gpu_id, dst_gpu, owner=handle.process.pid
            )
            serviced = system.service_link_burst(
                handle.process, dst_gpu, handle.gpu_id, clock,
                count, gap, wait, record, flow, steps=steps,
            )
        latencies, total = serviced
        self.bursts += 1
        self.resumed_bursts += 1
        self.accesses += count
        self.resumed_accesses += count
        self.service_cycles += total
        if record:
            if self._width is None:
                self._width = count
            elif count != self._width:
                raise SimulationError(
                    "recorded link-epoch bursts must share one width; "
                    "use record=False for heterogeneous plans"
                )
            self._starts.append(clock)
            self._lats.append(latencies)
        return total

    def take_outcome(self) -> LinkOutcome:
        """Assemble the columnar result (call once, after completion)."""
        if self._starts:
            starts = np.asarray(self._starts, dtype=np.float64)
            latencies = np.vstack(self._lats)
        else:
            starts = np.empty(0, dtype=np.float64)
            latencies = np.empty((0, self._width or 0), dtype=np.float64)
        return LinkOutcome(
            starts=starts,
            latencies=latencies,
            bursts=self.bursts,
            transfers=self.accesses,
            begin=self.begin,
            end=self.clock,
        )


# ----------------------------------------------------------------------
# Scalar-kernel adapter
# ----------------------------------------------------------------------
def _as_segment(op: Any):
    kind = type(op)
    if kind is ProbeSet:
        return EpochBurst(
            op.buffer,
            (tuple(op.indices),),
            parallel=op.parallel,
            issue_gap=op.issue_gap,
        )
    if kind is ProbeEpoch:
        return EpochBurst(
            op.buffer,
            tuple(tuple(s) for s in op.sets),
            parallel=op.parallel,
            issue_gap=op.issue_gap,
        )
    if kind is Compute or kind is Sleep:
        return EpochIdle(cycles=float(op.cycles))
    return None


def epochify(kernel: Generator[Any, Any, Any]) -> Generator[Any, Any, Any]:
    """Wrap a result-blind trace kernel into a single unrecorded epoch.

    Drains ``kernel`` (sending ``None``, which trace workloads ignore)
    and re-expresses its probe/compute stream as one
    ``AccessEpoch(record=False)`` -- the victim's whole run becomes a
    handful of cursor resumes instead of one heap event per 16-line
    batch.  Idle segments are kept one-per-op (not coalesced): float
    addition is not associative, and summing them would nudge the clock
    off the scalar path's bit pattern.

    The moment the kernel yields an op with no epoch equivalent (a
    store, fence or clock read), the collected prefix replays verbatim
    on the scalar path and the wrapper turns into a transparent
    passthrough: every later op is forwarded as yielded and its real
    engine result sent back in.  Eagerly draining past that point would
    be wrong, not just slow -- a result-*dependent* kernel (e.g. the
    composite victim's join loop, which polls a flag that only flips
    once its sibling streams run) may never terminate when fed ``None``.
    """
    segments: List[Any] = []
    while True:
        try:
            op = next(kernel)
        except StopIteration as stop:
            if segments:
                # round_reads=0: trace kernels never read the clock, so
                # the twin has no zero-latency lead-in ops.
                yield AccessEpoch(
                    tuple(segments), rounds=1, record=False, round_reads=0
                )
            return stop.value
        seg = _as_segment(op)
        if seg is not None:
            segments.append(seg)
            continue
        # Replay the epochable prefix (those ops already received None,
        # so their engine results are discarded), then go transparent.
        for prefix in segments:
            if type(prefix) is EpochIdle:
                yield Compute(prefix.cycles)
            else:
                yield ProbeSet(
                    prefix.buffer,
                    [index for group in prefix.sets for index in group],
                    parallel=prefix.parallel,
                    issue_gap=prefix.issue_gap,
                )
        result = yield op
        while True:
            try:
                op = kernel.send(result)
            except StopIteration as stop:
                return stop.value
            result = yield op
