"""Epoch cursor: bulk advancement of :class:`~repro.sim.ops.AccessEpoch`.

The engine's batch-native execution core.  A kernel that yields an
``AccessEpoch`` hands the engine its whole access plan -- bursts, idle
windows, repeat-until-deadline prime loops, round pacing -- and the
engine parks a cursor on the stream instead of bouncing one heap event
per probe.  Each time the stream reaches the head of the event heap the
cursor *resumes*: it services consecutive bursts through the vectorized
hardware cores until the next foreign event (another stream's op, the
``run(until=...)`` horizon, or a scheduled fault) would interleave, then
suspends with the stream re-queued at its advanced clock.

Ordering stays identical to scalar dispatch because bursts execute
atomically at their start time (the atomic-probe convention): the cursor
services a burst only while its start precedes every other pending
event, so the global op-start order -- the only order the convention
defines -- is unchanged.  Chaos faults are fences: the resume deadline
is capped at the injector's next due time, so a burst starting after a
scheduled fault is serviced only after the fault lands.  Telemetry fires
once per resume (epoch boundaries), not per access.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, TYPE_CHECKING

import numpy as np

from ..errors import SimulationError
from .ops import (
    AccessEpoch,
    Compute,
    EpochBurst,
    EpochIdle,
    EpochOutcome,
    EpochRepeat,
    ProbeEpoch,
    ProbeSet,
    Sleep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.system import MultiGPUSystem
    from .engine import StreamHandle

__all__ = ["EpochCursor", "epochify"]

_INF = float("inf")


class EpochCursor:
    """Resumable execution state of one in-flight :class:`AccessEpoch`."""

    __slots__ = (
        "op", "handle", "system", "begin", "clock",
        "round_index", "round_start", "in_round", "seg_index", "stop_at",
        "idle_pause", "lead", "last_advance", "key_lead", "key_since",
        "bursts", "accesses", "scalar_bursts", "remote",
        "resumed_accesses", "resumed_bursts",
        "service_cycles", "suspends",
        "_layout", "_starts", "_lats", "_hits", "_totals",
    )

    def __init__(
        self,
        op: AccessEpoch,
        handle: "StreamHandle",
        system: "MultiGPUSystem",
        begin: float,
    ) -> None:
        self.op = op
        self.handle = handle
        self.system = system
        self.begin = begin
        self.clock = begin
        self.round_index = 0
        self.round_start = begin
        self.in_round = False
        self.seg_index = 0
        self.stop_at: Optional[float] = None
        #: Marks the (round, segment) of a chunked idle whose final chunk
        #: already suspended once, so the resume completes it (progress
        #: guarantee) instead of pausing again.
        self.idle_pause = None
        #: Zero-latency clock reads the scalar twin has pending before its
        #: next resource op, and the start time of its last clock-advancing
        #: op -- together the FIFO tie key the scalar engine would have
        #: assigned this stream's queued event (see Engine._push).
        self.lead = 0
        self.last_advance = begin
        self.key_lead = 0
        self.key_since = begin
        self.bursts = 0
        self.accesses = 0
        self.scalar_bursts = 0
        self.remote = False
        #: Work serviced by the latest resume (per-resume stats/telemetry).
        self.resumed_accesses = 0
        self.resumed_bursts = 0
        #: Pure observers for the epoch profiler: sim-cycles spent inside
        #: burst service, and how many times the cursor suspended.  Never
        #: read by the clock arithmetic.
        self.service_cycles = 0.0
        self.suspends = 0
        self._layout = None
        self._starts: List[float] = []
        self._lats: List[np.ndarray] = []
        self._hits: List[np.ndarray] = []
        self._totals: List[float] = []

    # ------------------------------------------------------------------
    def resume(self, now: float, deadline: float) -> bool:
        """Advance until the epoch finishes or ``deadline`` interleaves.

        ``now`` is the heap time the stream was popped at (adopted if the
        cursor's clock lags it -- e.g. after a preemption fault rewrote
        the queued clock).  Returns ``True`` when the epoch is complete;
        otherwise the cursor's clock is where the stream must re-queue.

        A burst may start exactly at ``deadline`` only if nothing was
        serviced yet this resume: the stream was popped first at that
        time, so it owns the tie -- exactly the scalar engine's FIFO
        tie-break, where the re-pushed op would get a later sequence
        number than the already-queued foreign event.
        """
        op = self.op
        clock = self.clock
        if now > clock:
            clock = now
        entry = clock
        serviced = False
        self.resumed_accesses = 0
        self.resumed_bursts = 0
        segments = op.segments
        num_segments = len(segments)
        service = self._service
        # ``lead``/``last_advance`` mirror the scalar twin's event-queue
        # footprint: how many zero-latency clock reads it has pending, and
        # when its last clock-advancing op started (= when its queued heap
        # entry was pushed).  They become the suspension tie key so that
        # streams parked at the same instant pop in the oracle's order.
        lead = self.lead
        last_advance = self.last_advance
        while True:
            if not self.in_round:
                # Round-start checks observe externally mutated state (the
                # stop flag), so they run only while this stream still owns
                # the simulation clock -- past the deadline the cursor
                # suspends and re-checks after the foreign event has landed,
                # exactly when the scalar loop would re-check.
                if clock >= deadline and (serviced or clock > entry):
                    return self._suspend(
                        clock, lead, lead + op.round_reads, last_advance
                    )
                if op.rounds is not None and self.round_index >= op.rounds:
                    break
                if op.end_time is not None and clock >= op.end_time:
                    break
                if (
                    op.stop_flag is not None
                    and self.stop_at is None
                    and len(op.stop_flag)
                ):
                    self.stop_at = clock + op.grace_cycles
                if self.stop_at is not None and clock >= self.stop_at:
                    break
                self.in_round = True
                self.seg_index = 0
                self.round_start = clock
                lead += op.round_reads
            while self.seg_index < num_segments:
                seg = segments[self.seg_index]
                kind = type(seg)
                if kind is EpochBurst:
                    if clock >= deadline and (serviced or clock > entry):
                        return self._suspend(clock, lead, lead, last_advance)
                    start = clock
                    clock = start + service(seg, start)
                    if seg.post_cycles:
                        last_advance = clock
                        clock += seg.post_cycles
                    else:
                        last_advance = start
                    lead = 0
                    serviced = True
                elif kind is EpochIdle:
                    if seg.cycles:
                        last_advance = clock
                        clock += seg.cycles
                        lead = 0
                    if seg.until is not None:
                        target = self.round_start + seg.until
                        chunk = seg.chunk
                        if chunk is None:
                            if target > clock:
                                last_advance = clock
                                clock = target
                                lead = 0
                        else:
                            # Step like the scalar wait loop so the two
                            # backends' clocks agree bit-for-bit; each
                            # evaluation is one clock read in the twin.
                            here = (self.round_index, self.seg_index)
                            while True:
                                lead += 1
                                remaining = target - clock
                                if remaining <= 0:
                                    break
                                if remaining <= chunk and self.idle_pause != here:
                                    # Final chunk: the twin pushes its last
                                    # wait Compute here, and that push's FIFO
                                    # slot is what decides pop order when
                                    # several streams re-converge on a common
                                    # grid (trojans padded to one slot edge).
                                    # Suspend once so this cursor's re-push
                                    # lands in the same relative order.
                                    self.idle_pause = here
                                    return self._suspend(
                                        clock, lead - 1, lead, last_advance
                                    )
                                last_advance = clock
                                clock += remaining if remaining < chunk else chunk
                                lead = 0
                            if self.idle_pause == here:
                                self.idle_pause = None
                elif kind is EpochRepeat:
                    burst = seg.burst
                    target = self.round_start + seg.until
                    post = burst.post_cycles
                    while True:
                        lead += 1  # the twin's margin-check clock read
                        if clock + seg.margin > target:
                            break
                        if clock >= deadline and (serviced or clock > entry):
                            # ``lead - 1``: the margin check re-runs on
                            # resume; the key still counts it.
                            return self._suspend(clock, lead - 1, lead, last_advance)
                        start = clock
                        clock = start + service(burst, start)
                        if post:
                            last_advance = clock
                            clock += post
                        else:
                            last_advance = start
                        lead = 0
                        serviced = True
                else:
                    raise SimulationError(
                        f"AccessEpoch segment {seg!r} is not a burst/idle/repeat"
                    )
                self.seg_index += 1
            if op.period is not None:
                # ``period - elapsed`` then add: the scalar path's pacing
                # arithmetic, kept verbatim for bitwise clock equality.  A
                # round-read kernel reads the clock to compute the pad.
                if op.round_reads:
                    lead += 1
                remaining = op.period - (clock - self.round_start)
                if remaining > 0:
                    last_advance = clock
                    clock += remaining
                    lead = 0
            self.round_index += 1
            self.in_round = False
        self.clock = clock
        self.lead = lead
        self.last_advance = last_advance
        return True

    def _suspend(
        self, clock: float, lead: int, key_lead: int, last_advance: float
    ) -> bool:
        self.clock = clock
        self.lead = lead
        self.key_lead = key_lead
        self.key_since = last_advance
        self.last_advance = last_advance
        self.suspends += 1
        return False

    def _service(self, burst: EpochBurst, clock: float) -> float:
        latencies, hits, total, remote, scalar = self.system.service_burst(
            self.handle.process,
            burst.buffer,
            burst.sets,
            self.handle.gpu_id,
            clock,
            parallel=burst.parallel,
            issue_gap=burst.issue_gap,
        )
        self.bursts += 1
        self.resumed_bursts += 1
        # ``latencies`` is a numpy row from the vector core or a plain
        # list from the fused small-burst core; rows are kept as-is and
        # stacked once in :meth:`take_outcome`.
        count = len(latencies)
        self.accesses += count
        self.resumed_accesses += count
        self.service_cycles += total
        if scalar:
            self.scalar_bursts += 1
        if remote:
            self.remote = True
        if self.op.record:
            if self._layout is None:
                self._layout = self.system.epoch_layout(
                    burst.buffer, burst.sets, burst.parallel, burst.issue_gap
                )
            elif count != (len(self._lats[0]) if self._lats else count):
                raise SimulationError(
                    "recorded epoch bursts must share one set layout; "
                    "use record=False for heterogeneous plans"
                )
            self._starts.append(clock)
            self._lats.append(latencies)
            self._hits.append(hits)
            self._totals.append(total)
        return total

    def take_outcome(self) -> EpochOutcome:
        """Assemble the columnar result (call once, after completion)."""
        if self._layout is not None:
            counts, offsets, set_starts = self._layout
        else:
            counts = np.empty(0, dtype=np.int64)
            offsets = np.empty(0, dtype=np.int64)
            set_starts = np.empty(0, dtype=np.float64)
        if self._starts:
            starts = np.asarray(self._starts, dtype=np.float64)
            latencies = np.vstack(self._lats)
            hits = np.vstack(self._hits)
            totals = np.asarray(self._totals, dtype=np.float64)
        else:
            width = int(counts.sum())
            starts = np.empty(0, dtype=np.float64)
            latencies = np.empty((0, width), dtype=np.float64)
            hits = np.empty((0, width), dtype=bool)
            totals = np.empty(0, dtype=np.float64)
        return EpochOutcome(
            starts=starts,
            latencies=latencies,
            hits=hits,
            totals=totals,
            set_counts=counts,
            set_offsets=offsets,
            set_starts=set_starts,
            remote=self.remote,
            bursts=self.bursts,
            accesses=self.accesses,
            begin=self.begin,
            end=self.clock,
        )


# ----------------------------------------------------------------------
# Scalar-kernel adapter
# ----------------------------------------------------------------------
def _as_segment(op: Any):
    kind = type(op)
    if kind is ProbeSet:
        return EpochBurst(
            op.buffer,
            (tuple(op.indices),),
            parallel=op.parallel,
            issue_gap=op.issue_gap,
        )
    if kind is ProbeEpoch:
        return EpochBurst(
            op.buffer,
            tuple(tuple(s) for s in op.sets),
            parallel=op.parallel,
            issue_gap=op.issue_gap,
        )
    if kind is Compute or kind is Sleep:
        return EpochIdle(cycles=float(op.cycles))
    return None


def epochify(kernel: Generator[Any, Any, Any]) -> Generator[Any, Any, Any]:
    """Wrap a result-blind trace kernel into a single unrecorded epoch.

    Drains ``kernel`` (sending ``None``, which trace workloads ignore)
    and re-expresses its probe/compute stream as one
    ``AccessEpoch(record=False)`` -- the victim's whole run becomes a
    handful of cursor resumes instead of one heap event per 16-line
    batch.  Idle segments are kept one-per-op (not coalesced): float
    addition is not associative, and summing them would nudge the clock
    off the scalar path's bit pattern.

    The moment the kernel yields an op with no epoch equivalent (a
    store, fence or clock read), the collected prefix replays verbatim
    on the scalar path and the wrapper turns into a transparent
    passthrough: every later op is forwarded as yielded and its real
    engine result sent back in.  Eagerly draining past that point would
    be wrong, not just slow -- a result-*dependent* kernel (e.g. the
    composite victim's join loop, which polls a flag that only flips
    once its sibling streams run) may never terminate when fed ``None``.
    """
    segments: List[Any] = []
    while True:
        try:
            op = next(kernel)
        except StopIteration as stop:
            if segments:
                # round_reads=0: trace kernels never read the clock, so
                # the twin has no zero-latency lead-in ops.
                yield AccessEpoch(
                    tuple(segments), rounds=1, record=False, round_reads=0
                )
            return stop.value
        seg = _as_segment(op)
        if seg is not None:
            segments.append(seg)
            continue
        # Replay the epochable prefix (those ops already received None,
        # so their engine results are discarded), then go transparent.
        for prefix in segments:
            if type(prefix) is EpochIdle:
                yield Compute(prefix.cycles)
            else:
                yield ProbeSet(
                    prefix.buffer,
                    [index for group in prefix.sets for index in group],
                    parallel=prefix.parallel,
                    issue_gap=prefix.issue_gap,
                )
        result = yield op
        while True:
            try:
                op = kernel.send(result)
            except StopIteration as stop:
                return stop.value
            result = yield op
