"""Discrete-event engine driving kernel coroutines against the hardware.

Kernels are generators (see :mod:`repro.sim.ops`).  Each launched kernel
becomes a *stream* with its own clock; the engine always advances the stream
with the earliest clock, so trojan, spy and victim kernels interleave in
global time order exactly as concurrent kernels on different GPUs would.

One deliberate approximation: a :class:`~repro.sim.ops.ProbeSet` (a whole
eviction-set traversal) executes atomically at its start time instead of
line-by-line against other streams.  A traversal spans ~10k cycles, which is
the granularity at which the paper's own measurements operate; the payoff is
an order of magnitude fewer heap events at memorygram scale.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from ..errors import SimulationError
from .epoch import EpochCursor, LinkEpochCursor
from .ops import (
    Access,
    AccessEpoch,
    Compute,
    Fence,
    LinkEpoch,
    LinkProbe,
    ProbeEpoch,
    ProbeResult,
    ProbeSet,
    ReadClock,
    SharedStore,
    Sleep,
    Store,
)
from .process import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hw.system import MultiGPUSystem
    from ..telemetry.tracer import Tracer

__all__ = ["Engine", "EngineStats", "StreamHandle"]

Kernel = Generator[Any, Any, Any]


@dataclass
class EngineStats:
    """Throughput instrumentation for one engine (the perf baseline).

    ``events`` counts engine-loop dispatches (one per yielded op);
    ``accesses`` counts simulated memory accesses serviced, which is the
    quantity the performance benches report as events/sec -- a probe
    epoch is one event but hundreds of accesses.  ``wall_seconds``
    accumulates real time spent inside :meth:`Engine.run`.
    """

    events: int = 0
    accesses: int = 0
    wall_seconds: float = 0.0
    sim_cycles: float = 0.0
    #: Epoch-level counters: ``epochs`` dispatched, bursts/accesses they
    #: serviced, and how many bursts fell back to the scalar L2 core --
    #: a regression to per-event dispatch shows up here before it shows
    #: up in wall time.
    epochs: int = 0
    epoch_bursts: int = 0
    epoch_accesses: int = 0
    scalar_fallbacks: int = 0
    #: Trace events lost to ring overwrite while a tracer was attached
    #: (instrumentation overhead the trace itself cannot show) -- updated
    #: at the end of every :meth:`Engine.run` window.
    trace_dropped: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)

    def count_op(self, op_name: str, accesses: int = 0) -> None:
        self.events += 1
        self.accesses += accesses
        self.op_counts[op_name] = self.op_counts.get(op_name, 0) + 1

    def count_epoch(self, bursts: int, accesses: int, scalar_bursts: int) -> None:
        self.epochs += 1
        self.epoch_bursts += bursts
        self.epoch_accesses += accesses
        self.scalar_fallbacks += scalar_bursts

    def _per_sec(self, count: int) -> float:
        # Zero/negative wall time (a run too short for the perf counter to
        # tick, or a freshly reset stats object) yields 0.0, never a
        # ZeroDivisionError or inf.
        if self.wall_seconds <= 0.0:
            return 0.0
        return count / self.wall_seconds

    @property
    def events_per_sec(self) -> float:
        return self._per_sec(self.events)

    @property
    def accesses_per_sec(self) -> float:
        return self._per_sec(self.accesses)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready view of the stats (manifests, perf trajectory)."""
        return {
            "events": self.events,
            "accesses": self.accesses,
            "wall_seconds": self.wall_seconds,
            "sim_cycles": self.sim_cycles,
            "events_per_sec": self.events_per_sec,
            "accesses_per_sec": self.accesses_per_sec,
            "epochs": self.epochs,
            "epoch_bursts": self.epoch_bursts,
            "epoch_accesses": self.epoch_accesses,
            "accesses_per_epoch": (
                self.epoch_accesses / self.epochs if self.epochs else 0.0
            ),
            "scalar_fallbacks": self.scalar_fallbacks,
            "trace_dropped": self.trace_dropped,
            "op_counts": dict(self.op_counts),
        }

    def reset(self) -> None:
        self.events = 0
        self.accesses = 0
        self.wall_seconds = 0.0
        self.sim_cycles = 0.0
        self.epochs = 0
        self.epoch_bursts = 0
        self.epoch_accesses = 0
        self.scalar_fallbacks = 0
        self.trace_dropped = 0
        self.op_counts.clear()

    def summary(self) -> str:
        return (
            f"{self.events} events / {self.accesses} accesses in "
            f"{self.wall_seconds:.3f}s wall "
            f"({self.accesses_per_sec:,.0f} accesses/s, "
            f"{self.sim_cycles:,.0f} simulated cycles)"
        )


class StreamHandle:
    """One running kernel (one thread block's worth of activity)."""

    __slots__ = (
        "name",
        "gpu_id",
        "process",
        "generator",
        "clock",
        "done",
        "result",
        "pending",
        "placement",
        "cursor",
    )

    def __init__(
        self,
        name: str,
        gpu_id: int,
        process: Process,
        generator: Kernel,
        start: float,
    ) -> None:
        self.name = name
        self.gpu_id = gpu_id
        self.process = process
        self.generator = generator
        self.clock = start
        self.done = False
        self.result: Any = None
        self.pending: Any = None
        self.placement = None
        #: In-flight :class:`~repro.sim.epoch.EpochCursor`, when the
        #: stream's current op is an AccessEpoch being advanced in bulk.
        self.cursor: Optional[EpochCursor] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done else f"t={self.clock:.0f}"
        return f"StreamHandle({self.name!r}, gpu={self.gpu_id}, {state})"


class Engine:
    """Event loop multiplexing kernel streams over a :class:`MultiGPUSystem`."""

    def __init__(self, system: "MultiGPUSystem") -> None:
        self.system = system
        self.now: float = 0.0
        self.stats = EngineStats()
        #: Nullable telemetry hook (see :mod:`repro.telemetry`): when None
        #: the event loop pays a single branch per dispatch.
        self.tracer: Optional["Tracer"] = None
        #: Nullable fault-injection hook (see :mod:`repro.chaos`): same
        #: contract as the tracer -- one branch per dispatch when absent.
        self.chaos = None
        #: Nullable aggregated-metrics hook
        #: (:class:`repro.telemetry.metrics.AttackMetrics`): same contract.
        self.metrics = None
        #: Nullable epoch-profiler hook
        #: (:class:`repro.telemetry.profiler.EpochProfiler`): called once
        #: per cursor resume, never per access.
        self.profiler = None
        self._heap: List = []
        self._seq = 0
        self._events = 0

    # ------------------------------------------------------------------
    # Launch / run
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: Kernel,
        gpu_id: int,
        process: Process,
        name: str = "kernel",
        shared_mem: int = 0,
        start: Optional[float] = None,
    ) -> StreamHandle:
        """Queue a kernel on ``gpu_id``; it begins at ``start`` (default now).

        ``shared_mem`` reserves per-block shared memory on an SM under the
        leftover policy; the reservation is released when the kernel ends.
        """
        if not 0 <= gpu_id < len(self.system.gpus):
            raise SimulationError(f"no GPU {gpu_id} in this system")
        begin = self.now if start is None else float(start)
        handle = StreamHandle(name, gpu_id, process, kernel, begin)
        handle.placement = self.system.gpus[gpu_id].sms.place_block(shared_mem)
        self._push(handle)
        if self.tracer is not None:
            self.tracer.kernel_event("launch", handle, begin)
        if self.metrics is not None:
            self.metrics.count_kernel("launch", gpu_id)
        return handle

    def _push(
        self, handle: StreamHandle, lead: int = 0, since: Optional[float] = None
    ) -> None:
        """Queue ``handle`` at its clock.

        Entries sort by ``(when, lead, since, seq)``.  ``since`` is the
        simulation time of the push and ``lead`` the number of
        zero-latency ops the stream will run before its next
        resource-touching op.  For scalar dispatch both default
        (``lead=0``, ``since=now``) and the ordering collapses to the
        plain FIFO ``(when, seq)`` tie-break, because push times are
        non-decreasing in ``seq``.  Epoch cursors supply the values their
        scalar twin would have had, so streams suspended at the *same*
        instant (trojans padded to one slot grid) pop in the oracle's
        round-robin order: earliest last activity first, one zero-op per
        turn.
        """
        since_key = self.now if since is None else since
        heapq.heappush(self._heap, (handle.clock, lead, since_key, self._seq, handle))
        self._seq += 1

    def run(self, until: Optional[float] = None, max_events: int = 200_000_000) -> float:
        """Advance until all streams finish (or ``until`` cycles).

        Returns the final simulation time.
        """
        heap = self._heap
        stats = self.stats
        tracer = self.tracer
        chaos = self.chaos
        metrics = self.metrics
        profiler = self.profiler
        started_at = self.now
        wall_start = time.perf_counter()
        inf = float("inf")
        try:
            while heap:
                when, _lead, _since, _seq, handle = heap[0]
                if until is not None and when > until:
                    break
                heapq.heappop(heap)
                self.now = when
                # Faults scheduled at or before ``when`` land before the op
                # dispatched at ``when`` -- the injector may reshuffle the
                # heap (preemption) or mutate the hardware under the op.
                if chaos is not None:
                    chaos.advance(when)
                self._events += 1
                if self._events > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway kernel "
                        f"{handle.name!r}?"
                    )
                cursor = handle.cursor
                if cursor is None:
                    try:
                        op = handle.generator.send(handle.pending)
                    except StopIteration as stop:
                        handle.done = True
                        handle.result = stop.value
                        self._release(handle)
                        if tracer is not None:
                            tracer.kernel_event("end", handle, when)
                        if metrics is not None:
                            metrics.count_kernel("end", handle.gpu_id)
                        continue
                    if type(op) is AccessEpoch:
                        cursor = EpochCursor(op, handle, self.system, when)
                        handle.cursor = cursor
                        handle.pending = None
                    elif type(op) is LinkEpoch:
                        cursor = LinkEpochCursor(op, handle, self.system, when)
                        handle.cursor = cursor
                        handle.pending = None
                    else:
                        if metrics is None:
                            latency, result = self._execute(op, handle, when)
                        else:
                            before = stats.accesses
                            latency, result = self._execute(op, handle, when)
                            metrics.count_op(
                                type(op).__name__, stats.accesses - before
                            )
                        if tracer is not None:
                            tracer.op_event(op, handle, when, latency)
                        handle.clock = when + latency
                        handle.pending = result
                        self._push(handle)
                        continue
                # Epoch path: advance the cursor until the next foreign
                # event (or scheduled fault, or the run horizon) would
                # interleave, then re-queue the stream at its new clock.
                deadline = heap[0][0] if heap else inf
                if until is not None and until < deadline:
                    deadline = until
                if chaos is not None:
                    due = chaos.next_due()
                    if due < deadline:
                        deadline = due
                if profiler is None:
                    finished = cursor.resume(when, deadline)
                else:
                    resume_wall = time.perf_counter()
                    finished = cursor.resume(when, deadline)
                    profiler.record_resume(
                        handle,
                        cursor,
                        when,
                        time.perf_counter() - resume_wall,
                        finished,
                    )
                op_name = type(cursor.op).__name__
                stats.count_op(op_name, cursor.resumed_accesses)
                if metrics is not None:
                    metrics.count_op(op_name, cursor.resumed_accesses)
                    metrics.count_epoch_resume(
                        cursor.resumed_bursts, cursor.resumed_accesses
                    )
                if tracer is not None:
                    tracer.op_event(cursor.op, handle, when, cursor.clock - when)
                handle.clock = cursor.clock
                if finished:
                    stats.count_epoch(
                        cursor.bursts, cursor.accesses, cursor.scalar_bursts
                    )
                    if metrics is not None:
                        metrics.count_epoch_done(cursor)
                    handle.pending = cursor.take_outcome()
                    handle.cursor = None
                    self._push(handle)
                else:
                    # Suspended mid-epoch: queue with the FIFO tie key the
                    # scalar twin's last push would have carried.
                    self._push(handle, cursor.key_lead, cursor.key_since)
        finally:
            stats.wall_seconds += time.perf_counter() - wall_start
            stats.sim_cycles += self.now - started_at
            if tracer is not None:
                stats.trace_dropped = tracer.events.overwritten
            if metrics is not None:
                metrics.on_run_end(self.now, stats)
        return self.now

    def _release(self, handle: StreamHandle) -> None:
        if handle.placement is not None:
            self.system.gpus[handle.gpu_id].sms.release_block(handle.placement)
            handle.placement = None

    # ------------------------------------------------------------------
    # Op execution
    # ------------------------------------------------------------------
    def _execute(self, op: Any, handle: StreamHandle, now: float):
        system = self.system
        stats = self.stats
        if type(op) is Access:
            stats.count_op("Access", 1)
            result = system.access_word(
                handle.process,
                op.buffer,
                op.index,
                handle.gpu_id,
                now,
                through_l1=op.through_l1,
            )
            return result.latency, result
        if type(op) is ProbeSet:
            stats.count_op("ProbeSet", len(op.indices))
            return self._execute_probe(op, handle, now)
        if type(op) is ProbeEpoch:
            stats.count_op("ProbeEpoch", sum(len(s) for s in op.sets))
            return self._execute_epoch(op, handle, now)
        if type(op) is LinkProbe:
            stats.count_op("LinkProbe", op.num_transfers)
            result = system.probe_link(
                handle.process,
                op.dst_gpu,
                handle.gpu_id,
                now,
                num_transfers=op.num_transfers,
                gap_cycles=op.gap_cycles,
                wait=op.wait,
            )
            return result.total_latency, result
        if type(op) is Compute:
            stats.count_op("Compute")
            return float(op.cycles), None
        if type(op) is SharedStore:
            stats.count_op("SharedStore")
            op.buffer.data[op.index] = op.value
            return float(op.cost_cycles), None
        if type(op) is Store:
            stats.count_op("Store", 1)
            op.buffer.store(op.index, op.value)
            result = system.access_word(
                handle.process, op.buffer, op.index, handle.gpu_id, now, is_write=True
            )
            # Like Access, the stream resumes with the full AccessResult
            # (the latency alone used to be sent back, making the two
            # memory ops inconsistent to kernel code).
            return result.latency, result
        if type(op) is Fence:
            stats.count_op("Fence")
            return float(system.timing.fence_cycles), None
        if type(op) is Sleep:
            stats.count_op("Sleep")
            return float(op.cycles), None
        if type(op) is ReadClock:
            stats.count_op("ReadClock")
            return 0.0, handle.clock
        raise SimulationError(f"kernel {handle.name!r} yielded unknown op {op!r}")

    def _execute_epoch(self, op: ProbeEpoch, handle: StreamHandle, now: float):
        # Like ProbeSet, the whole epoch executes atomically at its start
        # time; per-set start offsets in the result let the prober place
        # samples on the time axis without one event per set.
        epoch = self.system.access_epoch(
            handle.process,
            op.buffer,
            op.sets,
            handle.gpu_id,
            now,
            parallel=op.parallel,
            issue_gap=op.issue_gap,
        )
        return epoch.total_latency, epoch

    def _execute_probe(self, op: ProbeSet, handle: StreamHandle, now: float):
        # In parallel (warp) mode access i issues at now + i*gap and the
        # total is the slowest completion; in sequential (pointer-chase)
        # mode latencies accumulate but every access is *stamped* at the
        # probe's start time for the resource-occupancy models: the probe
        # executes atomically, and stamping its internal accesses at their
        # "real" future times would make interleaved streams (whose events
        # sort earlier) queue behind reservations made in their future.
        latencies, hits, total, remote = self.system.access_batch(
            handle.process,
            op.buffer,
            op.indices,
            handle.gpu_id,
            now,
            parallel=op.parallel,
            issue_gap=op.issue_gap,
        )
        probe = ProbeResult(
            latencies=latencies, hits=hits, total_latency=total, remote=remote
        )
        return total, probe

    # ------------------------------------------------------------------
    def drain(self) -> None:
        """Drop all queued streams (abandoning their kernels)."""
        while self._heap:
            _when, _lead, _since, _seq, handle = heapq.heappop(self._heap)
            self._release(handle)

    @property
    def pending_streams(self) -> int:
        return len(self._heap)


def run_kernels(
    system: "MultiGPUSystem",
    launches: List,
    until: Optional[float] = None,
) -> List[StreamHandle]:
    """Convenience: launch ``(kernel, gpu_id, process, name)`` tuples and run."""
    engine = Engine(system)
    handles = [
        engine.launch(kernel, gpu_id, process, name=name)
        for (kernel, gpu_id, process, name) in launches
    ]
    engine.run(until=until)
    return handles
