"""Discrete-event simulation kernel: engine, streams, ops, processes."""

from .engine import Engine, StreamHandle
from .ops import (
    Access,
    Compute,
    Fence,
    ProbeSet,
    ReadClock,
    SharedStore,
    Sleep,
    Store,
)
from .process import DeviceBuffer, Process
from .rng import RngFanout

__all__ = [
    "Engine",
    "StreamHandle",
    "Access",
    "ProbeSet",
    "Compute",
    "Fence",
    "Sleep",
    "Store",
    "SharedStore",
    "ReadClock",
    "Process",
    "DeviceBuffer",
    "RngFanout",
]
