"""Composite victims: several applications sharing the target GPU.

Section VI: "in real scenarios, there will potentially be other concurrent
applications running on GPUs."  A :class:`CompositeWorkload` launches
several member workloads as concurrent kernels of one victim process, so
the spy's memorygram records their superposition -- the realistic input
for robustness studies of the fingerprinting attack.
"""

from __future__ import annotations

from typing import Any, Generator, List, Sequence

from ..runtime.api import Runtime
from ..sim.process import Process
from .base import TraceWorkload, Workload

__all__ = ["CompositeWorkload"]


class CompositeWorkload:
    """Run several workloads concurrently inside one victim process.

    Implements the :class:`~repro.workloads.base.Workload` protocol.  The
    memorygram prober launches ``kernel()`` as one stream; the composite
    kernel immediately *spawns* its members as sibling streams through the
    runtime and then joins them by watching their completion flags, so all
    members overlap in time.
    """

    def __init__(self, members: Sequence[TraceWorkload], name: str = "") -> None:
        if not members:
            raise ValueError("composite needs at least one member workload")
        self.members = list(members)
        self.name = name or "+".join(member.name for member in self.members)
        self._runtime: Runtime = None  # type: ignore[assignment]
        self._process: Process = None  # type: ignore[assignment]
        self._gpu_id = 0

    def allocate(self, runtime: Runtime, process: Process, gpu_id: int) -> None:
        self._runtime = runtime
        self._process = process
        self._gpu_id = gpu_id
        for member in self.members:
            member.allocate(runtime, process, gpu_id)

    def kernel(self) -> Generator[Any, Any, Any]:
        from ..sim.ops import ReadClock, Sleep

        done: List[object] = []
        total = len(self.members)

        def wrapped(inner):
            result = yield from inner
            done.append(True)
            return result

        now = yield ReadClock()
        for index, member in enumerate(self.members):
            self._runtime.launch(
                wrapped(member.kernel()),
                self._gpu_id,
                self._process,
                name=f"{self.name}_member{index}",
                start=now,
            )
        # Join: poll the completion flags (host-side stream sync).
        while len(done) < total:
            yield Sleep(20_000.0)
