"""fastWalshTransform from the CUDA samples: in-place butterfly passes.

log2(N) full passes over one array with doubling strides: the memorygram
shows the whole footprint re-swept repeatedly, with the stride pattern
shifting which sets co-activate -- periodic full-width bands.
"""

from __future__ import annotations

from .base import TraceWorkload

__all__ = ["WalshTransform"]


class WalshTransform(TraceWorkload):
    name = "walsh"

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        super().__init__(scale=scale, seed=seed)

    def buffer_plan(self):
        return [("data", 1024)]

    def kernel(self):
        lines = self.lines_in(0)
        stride = 1
        while stride < lines:
            # One butterfly pass: every line read and written once, paired
            # at the current stride.
            for start in range(0, lines, 2 * stride):
                count = min(stride, lines - start)
                yield from self.stream(0, start, count)
                yield from self.strided(0, stride_lines=1, count=count, start_line=start + stride)
                yield from self.compute(count * 8)
            stride *= 2
