"""Name -> workload factory registry (the §V-A victim set)."""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import TraceWorkload
from .blackscholes import BlackScholes
from .histogram import Histogram
from .matmul import MatrixMultiply
from .quasirandom import QuasiRandom
from .vectoradd import VectorAdd
from .walsh import WalshTransform

__all__ = ["WORKLOADS", "make_workload", "workload_names"]

WORKLOADS: Dict[str, Callable[..., TraceWorkload]] = {
    "vectoradd": VectorAdd,
    "histogram": Histogram,
    "blackscholes": BlackScholes,
    "matmul": MatrixMultiply,
    "quasirandom": QuasiRandom,
    "walsh": WalshTransform,
}


def workload_names() -> List[str]:
    """The six victim applications, in the paper's order of mention."""
    return ["vectoradd", "histogram", "blackscholes", "matmul", "quasirandom", "walsh"]


def make_workload(name: str, **kwargs) -> TraceWorkload:
    try:
        factory = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return factory(**kwargs)
