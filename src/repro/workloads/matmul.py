"""matrixMul from the CUDA samples: tiled C = A x B.

Tiled reuse: each output tile re-reads a row band of A against every
column band of B, so A's sets stay hot while B's sweep repeatedly -- a
banded, periodic memorygram unlike any of the streaming kernels.
"""

from __future__ import annotations

from .base import TraceWorkload

__all__ = ["MatrixMultiply"]


class MatrixMultiply(TraceWorkload):
    name = "matmul"

    def __init__(self, scale: float = 1.0, seed: int = 0, tile_lines: int = 32) -> None:
        super().__init__(scale=scale, seed=seed)
        self.tile_lines = tile_lines

    def buffer_plan(self):
        # 256 KiB per matrix ~ 256x256 floats, the CUDA sample's default.
        return [("a", 256), ("b", 256), ("c", 256)]

    def kernel(self):
        lines = self.lines_in(0)
        tiles = max(1, lines // self.tile_lines)
        for row_tile in range(tiles):
            a_start = row_tile * self.tile_lines
            for col_tile in range(tiles):
                b_start = col_tile * self.tile_lines
                # Row band of A is re-read against this column band of B.
                yield from self.stream(0, a_start, self.tile_lines)
                yield from self.strided(1, stride_lines=tiles, count=self.tile_lines, start_line=b_start)
                yield from self.compute(self.tile_lines * 24)
            # Write one row band of C.
            yield from self.stream(2, a_start, self.tile_lines)
