"""quasirandomGenerator from the CUDA samples: Sobol sequences.

A tiny, permanently hot direction-vector table plus a long write-only
output stream with moderate arithmetic: a thin hot band + a pure write
sweep, distinguishable from histogram by the absence of scattered updates.
"""

from __future__ import annotations

from .base import TraceWorkload

__all__ = ["QuasiRandom"]


class QuasiRandom(TraceWorkload):
    name = "quasirandom"

    def __init__(self, scale: float = 1.0, seed: int = 0, batches: int = 5) -> None:
        super().__init__(scale=scale, seed=seed)
        self.batches = batches

    def buffer_plan(self):
        return [("directions", 8), ("output", 1024)]

    def kernel(self):
        out_lines = self.lines_in(1)
        chunk = 48
        for _ in range(self.batches):
            for start in range(0, out_lines, chunk):
                span = min(chunk, out_lines - start)
                # Direction vectors are re-read for every output chunk.
                yield from self.stream(0)
                yield from self.compute(span * 10)
                yield from self.stream(1, start, span)
