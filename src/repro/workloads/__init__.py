"""Victim workloads: the six CUDA-toolkit kernels of §V-A plus the MLP."""

from .base import TraceWorkload, Workload
from .blackscholes import BlackScholes
from .composite import CompositeWorkload
from .histogram import Histogram
from .matmul import MatrixMultiply
from .mlp import MLPTraining
from .quasirandom import QuasiRandom
from .registry import WORKLOADS, make_workload, workload_names
from .vectoradd import VectorAdd
from .walsh import WalshTransform

__all__ = [
    "Workload",
    "TraceWorkload",
    "CompositeWorkload",
    "VectorAdd",
    "Histogram",
    "BlackScholes",
    "MatrixMultiply",
    "QuasiRandom",
    "WalshTransform",
    "MLPTraining",
    "WORKLOADS",
    "make_workload",
    "workload_names",
]
