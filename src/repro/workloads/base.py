"""Workload protocol and trace-kernel helpers.

A workload is a victim application whose *memory behaviour* runs on the
simulated GPU: it allocates buffers on its device and issues loads/stores
through the same access path as everything else, so its lines evict the
spy's primed lines set by set -- which is exactly the leakage the paper's
memorygrams capture.

Access patterns follow the real kernels' structure (streaming passes,
tiled reuse, scattered bins, butterfly strides); arithmetic between memory
operations is modelled as compute cycles at each kernel's characteristic
intensity.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional, Protocol, Sequence

import numpy as np

from ..runtime.api import Runtime
from ..sim.ops import Compute, ProbeSet
from ..sim.process import DeviceBuffer, Process

__all__ = ["Workload", "TraceWorkload"]

#: Lines per ProbeSet batch: large enough to amortize event overhead,
#: small enough to interleave with the spy at sub-slot granularity.
_BATCH_LINES = 16


class Workload(Protocol):
    """What the side-channel harness needs from a victim application."""

    name: str

    def allocate(self, runtime: Runtime, process: Process, gpu_id: int) -> None:
        """Create the victim's device buffers."""
        ...  # pragma: no cover - protocol

    def kernel(self) -> Generator[Any, Any, Any]:
        """The victim's execution stream (one generator, run to completion)."""
        ...  # pragma: no cover - protocol


class TraceWorkload:
    """Base class: buffer management plus streaming/strided access helpers."""

    name = "trace"

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.rng = np.random.default_rng(seed)
        self.buffers: List[DeviceBuffer] = []
        self._words_per_line: Optional[int] = None

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, runtime: Runtime, process: Process, gpu_id: int) -> None:
        self._words_per_line = runtime.system.spec.gpu.cache.line_size // 8
        for name, kib in self.buffer_plan():
            size = max(1, int(kib * self.scale)) * 1024
            self.buffers.append(
                runtime.malloc(process, gpu_id, size, name=f"{self.name}_{name}")
            )

    def buffer_plan(self) -> Sequence:
        """Override: [(buffer_name, size_in_KiB), ...] before scaling."""
        raise NotImplementedError

    def buffer(self, index: int) -> DeviceBuffer:
        return self.buffers[index]

    def lines_in(self, index: int) -> int:
        assert self._words_per_line is not None, "allocate() not called"
        return self.buffers[index].num_words // self._words_per_line

    # ------------------------------------------------------------------
    # Trace helpers (used inside kernel() implementations)
    # ------------------------------------------------------------------
    def _indices(self, lines: Iterable[int]) -> List[int]:
        wpl = self._words_per_line
        assert wpl is not None
        return [line * wpl for line in lines]

    def stream(self, index: int, start_line: int = 0, num_lines: Optional[int] = None):
        """Sequential pass over a buffer (vector kernels, input stages)."""
        total = self.lines_in(index)
        if num_lines is None:
            num_lines = total - start_line
        buf = self.buffers[index]
        line = start_line
        end = start_line + num_lines
        while line < end:
            batch = list(range(line, min(line + _BATCH_LINES, end)))
            yield ProbeSet(buf, self._indices(batch))
            line += _BATCH_LINES

    def strided(self, index: int, stride_lines: int, count: int, start_line: int = 0):
        """Strided pass (butterfly stages, column walks)."""
        buf = self.buffers[index]
        total = self.lines_in(index)
        lines = [(start_line + k * stride_lines) % total for k in range(count)]
        for at in range(0, len(lines), _BATCH_LINES):
            yield ProbeSet(buf, self._indices(lines[at : at + _BATCH_LINES]))

    def scattered(self, index: int, count: int, hot_lines: Optional[int] = None):
        """Random-ish accesses concentrated on ``hot_lines`` (histogram bins)."""
        buf = self.buffers[index]
        total = self.lines_in(index)
        span = min(hot_lines or total, total)
        lines = self.rng.integers(0, span, count)
        for at in range(0, count, _BATCH_LINES):
            yield ProbeSet(buf, self._indices(int(l) for l in lines[at : at + _BATCH_LINES]))

    def compute(self, cycles: float):
        yield Compute(cycles)

    # ------------------------------------------------------------------
    def kernel(self) -> Generator[Any, Any, Any]:
        raise NotImplementedError
