"""The §V-B victim: an MLP with one hidden layer training on MNIST-sized data.

The paper trains a PyTorch MLP on MNIST and infers the hidden width (and
the epoch count) from the remote memorygram.  Here the victim issues the
memory traffic of that training loop with buffer sizes derived from the
*real* tensor shapes (784 x H weights, batch x 784 inputs, H x 10 outputs,
forward + backward passes).

Two modelling choices keep the leakage faithful to the hardware:

- **Constant-duration batches.**  On a real GPU a wider hidden layer fills
  more SMs; wall-clock per batch barely moves while memory traffic grows.
  The sequential trace reproduces that by padding each batch with dummy
  compute up to ``target_batch_cycles``, so hidden width changes traffic
  *intensity* -- which is exactly what Table II's per-set miss counts pick
  up -- rather than trace length.
- **Strided tensor sweeps.**  Tensors are swept at a line stride > 1: the
  set *footprint* (which cache sets get touched, across all pages of the
  tensor) is preserved while the simulated access count stays tractable.

Inter-epoch gaps (shuffle + host-side bookkeeping, no device traffic) are
modelled as compute-only pauses; they are what makes epoch boundaries
visible in Fig 15.
"""

from __future__ import annotations

from typing import Sequence

from ..sim.ops import Compute
from .base import TraceWorkload

__all__ = ["MLPTraining"]

#: MNIST geometry (the paper's dataset).
_INPUT_DIM = 784
_NUM_CLASSES = 10
_BYTES_PER_FLOAT = 4


class MLPTraining(TraceWorkload):
    """Training-loop memory trace of a 784 -> H -> 10 MLP."""

    name = "mlp"

    def __init__(
        self,
        hidden_neurons: int = 128,
        epochs: int = 1,
        batches_per_epoch: int = 2,
        batch_size: int = 64,
        scale: float = 1.0,
        seed: int = 0,
        epoch_gap_cycles: float = 700_000.0,
        target_batch_cycles: float = 4_800_000.0,
        sweep_stride: int = 4,
    ) -> None:
        super().__init__(scale=scale, seed=seed)
        if hidden_neurons < 1:
            raise ValueError("hidden_neurons must be >= 1")
        self.hidden_neurons = hidden_neurons
        self.epochs = epochs
        self.batches_per_epoch = batches_per_epoch
        self.batch_size = batch_size
        self.epoch_gap_cycles = epoch_gap_cycles
        self.target_batch_cycles = target_batch_cycles
        self.sweep_stride = max(1, sweep_stride)
        self.name = f"mlp{hidden_neurons}"

    def buffer_plan(self):
        h = self.hidden_neurons
        to_kib = lambda numel: max(1, numel * _BYTES_PER_FLOAT // 1024)  # noqa: E731
        return [
            ("x", to_kib(self.batch_size * _INPUT_DIM)),
            ("w1", to_kib(_INPUT_DIM * h)),
            ("act", to_kib(self.batch_size * h)),
            ("w2", to_kib(max(256, h * _NUM_CLASSES))),
            ("logits", to_kib(max(256, self.batch_size * _NUM_CLASSES))),
            ("grads", to_kib(_INPUT_DIM * h + h * _NUM_CLASSES)),
        ]

    # Buffer indices, for readability inside the kernel.
    _X, _W1, _ACT, _W2, _LOGITS, _GRADS = range(6)

    def _sweep(self, index: int):
        """One strided pass over a tensor (footprint-preserving)."""
        stride = self.sweep_stride
        count = max(1, self.lines_in(index) // stride)
        yield from self.strided(index, stride_lines=stride, count=count)

    def _gemm_traffic(self, a_index: int, b_index: int, out_index: int):
        """Traffic of one GEMM: sweep A and B, write OUT, FLOP-heavy."""
        yield from self._sweep(a_index)
        yield from self._sweep(b_index)
        yield from self.compute(
            (self.lines_in(a_index) + self.lines_in(b_index)) * 4
        )
        yield from self._sweep(out_index)

    def _one_batch(self):
        # Forward: act = relu(X @ W1); logits = act @ W2
        yield from self._gemm_traffic(self._X, self._W1, self._ACT)
        yield from self._gemm_traffic(self._ACT, self._W2, self._LOGITS)
        # Loss + backward: re-read activations and both weights, write
        # gradients, then the SGD update re-writes the weights.
        yield from self._sweep(self._LOGITS)
        yield from self._gemm_traffic(self._ACT, self._LOGITS, self._GRADS)
        yield from self._gemm_traffic(self._X, self._ACT, self._GRADS)
        yield from self._sweep(self._W1)
        yield from self._sweep(self._W2)

    def _batch_lines(self) -> int:
        """Lines one batch sweeps (for the pacing-gap estimate)."""
        stride = self.sweep_stride
        per_sweep = {
            i: max(1, self.lines_in(i) // stride) for i in range(len(self.buffers))
        }
        gemms = [
            (self._X, self._W1, self._ACT),
            (self._ACT, self._W2, self._LOGITS),
            (self._ACT, self._LOGITS, self._GRADS),
            (self._X, self._ACT, self._GRADS),
        ]
        total = sum(per_sweep[a] + per_sweep[b] + per_sweep[c] for a, b, c in gemms)
        total += per_sweep[self._LOGITS] + per_sweep[self._W1] + per_sweep[self._W2]
        return total

    #: Rough cycles per (mostly L2-hit) local access, for pacing estimates.
    _CYCLES_PER_LINE = 300.0

    def _paced_batch(self):
        """One batch with its idle time spread *between* traffic bursts.

        On real hardware a narrow layer under-fills the GPU, lowering the
        traffic rate throughout the batch -- not leaving one long silent
        tail.  A silent tail would read as an epoch boundary in Fig 15, so
        the pacing gap is injected after every ProbeSet burst instead.
        """
        from ..sim.ops import ProbeSet

        lines = self._batch_lines()
        bursts = max(1, -(-lines // 16))
        traffic_cycles = lines * self._CYCLES_PER_LINE
        gap = max(0.0, (self.target_batch_cycles - traffic_cycles) / bursts)

        inner = self._one_batch()
        try:
            op = next(inner)
            while True:
                result = yield op
                if gap > 0.0 and type(op) is ProbeSet:
                    yield Compute(gap)
                op = inner.send(result)
        except StopIteration:
            pass

    def kernel(self):
        for _epoch in range(self.epochs):
            for _batch in range(self.batches_per_epoch):
                yield from self._paced_batch()
            # Epoch boundary: shuffle / metrics on the host, device idle.
            yield Compute(self.epoch_gap_cycles)

    @staticmethod
    def sweep(hidden_sizes: Sequence[int] = (64, 128, 256, 512), **kwargs):
        """The Table II configuration set."""
        return [MLPTraining(hidden_neurons=h, **kwargs) for h in hidden_sizes]
