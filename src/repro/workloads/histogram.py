"""histogram from the CUDA samples: scattered bin updates over a stream.

One long sequential input scan plus very hot, very small bin tables:
a narrow always-hot band in the memorygram over a slow streaming sweep.
"""

from __future__ import annotations

from .base import TraceWorkload

__all__ = ["Histogram"]


class Histogram(TraceWorkload):
    name = "histogram"

    def __init__(self, scale: float = 1.0, seed: int = 0, passes: int = 3) -> None:
        super().__init__(scale=scale, seed=seed)
        self.passes = passes

    def buffer_plan(self):
        # input stream, per-block partial histograms, final 256-bin table
        return [("input", 1024), ("partials", 64), ("bins", 4)]

    def kernel(self):
        lines = self.lines_in(0)
        chunk = 48
        for _ in range(self.passes):
            for start in range(0, lines, chunk):
                span = min(chunk, lines - start)
                yield from self.stream(0, start, span)
                # Each input chunk scatters updates into the partials.
                yield from self.scattered(1, count=span)
                yield from self.compute(span * 6)
            # Reduction of partials into the final bins.
            yield from self.stream(1)
            yield from self.scattered(2, count=64)
            yield from self.compute(800)
