"""vectorAdd from the CUDA samples: C[i] = A[i] + B[i].

Pure streaming: three arrays read/written once per pass with almost no
arithmetic between loads.  Its memorygram is a set of broad, short bursts
sweeping the whole footprint -- the "widest, fastest" signature of the six.
"""

from __future__ import annotations

from .base import TraceWorkload

__all__ = ["VectorAdd"]


class VectorAdd(TraceWorkload):
    name = "vectoradd"

    def __init__(self, scale: float = 1.0, seed: int = 0, passes: int = 6) -> None:
        super().__init__(scale=scale, seed=seed)
        self.passes = passes

    def buffer_plan(self):
        return [("a", 512), ("b", 512), ("c", 512)]

    def kernel(self):
        for _ in range(self.passes):
            lines = self.lines_in(0)
            # Grid-stride loop: interleave A, B reads and C writes.
            chunk = 64
            for start in range(0, lines, chunk):
                span = min(chunk, lines - start)
                yield from self.stream(0, start, span)
                yield from self.stream(1, start, span)
                yield from self.stream(2, start, span)
                yield from self.compute(span * 4)
