"""BlackScholes from the CUDA samples: option pricing.

Five arrays (price, strike, time in; call, put out) with *heavy* per-element
arithmetic (exp, log, CND evaluations) -- the lowest memory rate of the six,
so its memorygram shows sparse, slow sweeps.
"""

from __future__ import annotations

from .base import TraceWorkload

__all__ = ["BlackScholes"]


class BlackScholes(TraceWorkload):
    name = "blackscholes"

    def __init__(self, scale: float = 1.0, seed: int = 0, iterations: int = 4) -> None:
        super().__init__(scale=scale, seed=seed)
        self.iterations = iterations

    def buffer_plan(self):
        return [
            ("price", 256),
            ("strike", 256),
            ("years", 256),
            ("call", 256),
            ("put", 256),
        ]

    def kernel(self):
        lines = self.lines_in(0)
        chunk = 32
        for _ in range(self.iterations):
            for start in range(0, lines, chunk):
                span = min(chunk, lines - start)
                for buf_index in range(3):  # price, strike, years
                    yield from self.stream(buf_index, start, span)
                # exp/log/sqrt-heavy body dominates the runtime.
                yield from self.compute(span * 60)
                for buf_index in (3, 4):  # call, put
                    yield from self.stream(buf_index, start, span)
