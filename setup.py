"""Setup shim: enables `pip install -e .` without the `wheel` package.

All metadata lives in pyproject.toml (PEP 621); setuptools >= 61 reads it.
"""

from setuptools import setup

setup()
