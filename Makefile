# Convenience targets for the GPU-box reproduction.

PY ?= python
JOBS ?= 4

.PHONY: install test bench perf report examples clean

install:
	pip install -e .

test:
	$(PY) -m pytest tests/

test-log:
	$(PY) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-log:
	$(PY) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

perf:
	PYTHONPATH=src $(PY) benchmarks/bench_perf_simulator.py

report:
	$(PY) -m repro.cli report --jobs $(JOBS) --output evaluation_report.txt

report-small:
	$(PY) -m repro.cli --small report --jobs $(JOBS) \
		--output evaluation_report_small.txt

examples:
	$(PY) examples/quickstart.py
	$(PY) examples/covert_channel.py
	$(PY) examples/box_scan.py
	$(PY) examples/multi_gpu_channel.py

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/paper_results.txt \
	       test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
