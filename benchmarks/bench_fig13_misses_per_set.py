"""Fig 13: per-set miss histogram intensifies with the hidden width."""

import pytest

from repro.config import DGXSpec
from repro.core.sidechannel.model_extraction import ModelExtractionAttack
from repro.runtime.api import Runtime


@pytest.mark.paper
def test_fig13_misses_per_set(benchmark):
    def experiment():
        runtime = Runtime(DGXSpec.dgx1(), seed=9)
        attack = ModelExtractionAttack(runtime, seed=9)
        return attack.misses_per_set_histogram(hidden_sizes=(128, 512), bins=12)

    histograms = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print()
    print("== fig13: per-set miss histograms ==")
    for hidden, (counts, edges) in histograms.items():
        print(f"H={hidden}: counts {list(counts)}")
    print("paper: the intensity of misses increases with the hidden size")

    mass = {}
    for hidden, (counts, edges) in histograms.items():
        centers = 0.5 * (edges[:-1] + edges[1:])
        mass[hidden] = float((counts * centers).sum() / max(1, counts.sum()))
    assert mass[512] > mass[128]
