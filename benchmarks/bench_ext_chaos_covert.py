"""Extension: covert-channel resilience under deterministic fault injection.

Runs the same seeded fault plan against the plain Fig 9/10 channel and
against the self-healing ARQ transport (chunked CRC frames, preamble
re-lock, rolling thresholds, NACK retransmit, in-place set repair), and
asserts the transport actually recovers what the faults corrupt.
"""

import numpy as np
import pytest

from repro.chaos import install_chaos
from repro.config import ChaosSpec, DGXSpec
from repro.core.covert.channel import CovertChannel
from repro.core.covert.encoding import bit_error_rate
from repro.core.covert.resilient import ResilientCovertChannel
from repro.runtime.api import Runtime

#: Dense custom schedule: the preset mix compressed into the span of the
#: benchmark's transmission so every fault lands mid-message.
_STORM = ChaosSpec(
    preset="custom",
    horizon_cycles=400_000.0,
    flush_events=6,
    dvfs_events=3,
    dvfs_max_drift=0.45,
    dvfs_window_cycles=120_000.0,
    remap_events=3,
    remap_pages=2,
)


@pytest.mark.paper
def test_ext_chaos_covert(benchmark):
    def experiment():
        rng = np.random.default_rng(7)
        payload = [int(b) for b in rng.integers(0, 2, 192)]

        runtime = Runtime(DGXSpec.dgx1(), seed=7)
        channel = CovertChannel(runtime)
        channel.setup(num_sets=2)
        plain_injector = install_chaos(runtime, _STORM, seed=11)
        plain = channel.transmit(payload, strict=False)

        runtime2 = Runtime(DGXSpec.dgx1(), seed=7)
        channel2 = CovertChannel(runtime2)
        channel2.setup(num_sets=2)
        install_chaos(runtime2, _STORM, seed=11)
        resilient = ResilientCovertChannel(channel2)
        recovered, report = resilient.transmit(payload)
        return payload, plain, plain_injector, recovered, report

    payload, plain, injector, recovered, report = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    resilient_ber = bit_error_rate(payload, recovered)

    print()
    print("== extension: covert channel under fault injection ==")
    print(f"fault plan    : {injector.plan.plan_hash()} "
          f"({len(injector.applied)} faults applied)")
    print(f"plain channel : error {plain.error_rate * 100:.2f}%")
    print(f"resilient ARQ : error {resilient_ber * 100:.2f}%  "
          f"({report.retransmits} retransmits, {len(report.repairs)} repairs, "
          f"goodput {report.goodput_ratio:.2f})")

    assert len(injector.applied) > 0
    assert len(recovered) == len(payload)
    assert resilient_ber <= 0.01
    assert plain.error_rate == 0.0 or resilient_ber < plain.error_rate
