"""Section VII ablation: partitioning and detection."""

import pytest

from repro.experiments import ablation_defense


@pytest.mark.paper
def test_ablation_defense(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: ablation_defense.run(seed=5, num_sets=2, payload_bits=256),
        rounds=1,
        iterations=1,
    )
    print_result(result)
    outcomes = {row[0]: row[1] for row in result.rows}
    assert "channel up" in outcomes["no defense"]
    assert outcomes["detector during covert transmission"] == "flagged"
    assert outcomes["detector during honest workload"] == "not flagged"
    mig = outcomes["MIG-style L2 way-partitioning"]
    assert "failed" in mig or "degraded" in mig
