"""Section VI ablation: background noise vs occupancy blocking."""

import pytest

from repro.experiments import ablation_noise


@pytest.mark.paper
def test_ablation_noise(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: ablation_noise.run(seed=4, num_sets=2, payload_bits=256),
        rounds=1,
        iterations=1,
    )
    print_result(result)
    rates = {row[0]: row[1] for row in result.rows}
    # Noise degrades the channel; blocking shuts the noise process out,
    # restoring (at least) the noisy error rate back toward quiet levels.
    assert rates["background noise"] >= rates["quiet box"]
    assert rates["noise + occupancy blocking"] <= rates["background noise"]
    assert result.extras["noise_was_blocked"] is True
