"""Fig 9: covert-channel bandwidth and error rate vs number of sets."""

import pytest

from repro.experiments import fig09_bandwidth


@pytest.mark.paper
def test_fig09_bandwidth_error(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig09_bandwidth.run(
            seed=3, set_counts=(1, 2, 4, 8, 12), payload_bits=512, repeats=3
        ),
        rounds=1,
        iterations=1,
    )
    print_result(result)
    rows = {row[0]: row for row in result.rows}
    # Shape: raw bandwidth grows linearly with sets while the channel holds.
    assert rows[2][1] > rows[1][1]
    assert rows[4][1] > rows[2][1]
    assert rows[8][1] > rows[4][1]
    # Shape: the channel is usable pre-knee and drowns past it (the paper's
    # smooth error growth emerges when averaging over many runs; at bench
    # scale the pre-knee error floor is near zero everywhere).
    working = [rows[n][2] for n in (1, 2, 4, 8)]
    assert all(err <= 10.0 for err in working)  # pre-knee: usable channel
    assert rows[12][2] >= 5.0  # post-knee: error rate jumps
    assert rows[12][2] >= 3.0 * max(working)
    assert max(working[2], working[3]) >= min(working[0], working[1])
