"""Extension: box-wide victim location accuracy (§V-A's first step)."""

import pytest

from repro.config import DGXSpec
from repro.core.sidechannel.scanner import BoxScanner
from repro.runtime.api import Runtime
from repro.workloads import make_workload


@pytest.mark.paper
def test_ext_scanner_locates_victims(benchmark):
    def experiment():
        runtime = Runtime(DGXSpec.dgx1(), seed=21)
        scanner = BoxScanner(runtime, num_sets=32)
        victims = {
            0: make_workload("vectoradd", scale=0.2, seed=1),
            3: make_workload("histogram", scale=0.2, seed=2),
            6: make_workload("matmul", scale=0.2, seed=3),
        }
        report = scanner.scan(victims=victims, observation_cycles=1_500_000.0)
        return report

    report = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print("== ext-scanner: box-wide victim location ==")
    print(report.summary())
    assert report.active_gpus() == [0, 3, 6]
    for gpu in (1, 2, 4, 5, 7):
        assert not report.active[gpu]
