"""Ablation: the slot-length (trojan access frequency) tuning knob."""

import pytest

from repro.experiments import ablation_slot


@pytest.mark.paper
def test_ablation_slot(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: ablation_slot.run(
            seed=7, slot_lengths=(1500.0, 3000.0, 6000.0), payload_bits=256
        ),
        rounds=1,
        iterations=1,
    )
    print_result(result)
    rows = {row[0]: row for row in result.rows}
    # Bandwidth inversely proportional to slot length.
    assert rows[1500.0][1] > rows[3000.0][1] > rows[6000.0][1]
    # The longest slot is at least as reliable as the shortest.
    assert rows[6000.0][2] <= rows[1500.0][2] + 1.0