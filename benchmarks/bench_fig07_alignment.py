"""Fig 7 / Algorithm 2: cross-process eviction-set alignment."""

import pytest

from repro.experiments import fig07_alignment


@pytest.mark.paper
def test_fig07_alignment(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig07_alignment.run(seed=7, candidate_sets=4), rounds=1, iterations=1
    )
    print_result(result)
    assert "ground-truth physical sets match: True" in result.notes
    alignment = result.extras["alignment"]
    assert alignment.num_aligned >= 1
    # Mapped pairs show contention (high spy mean); unmapped show hits.
    mapped = [m.spy_mean_cycles for m in alignment.measurements if m.mapped]
    unmapped = [m.spy_mean_cycles for m in alignment.measurements if not m.mapped]
    if mapped and unmapped:
        assert min(mapped) > max(unmapped)
