"""Ablation: replacement policy vs eviction determinism (Fig 5's premise)."""

import pytest

from repro.experiments import ablation_replacement


@pytest.mark.paper
def test_ablation_replacement(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: ablation_replacement.run(seed=7, repeats=10), rounds=1, iterations=1
    )
    print_result(result)
    by_policy = {row[0]: row for row in result.rows}
    # LRU: fully deterministic eviction at exactly the associativity.
    assert by_policy["lru"][1] == "10/10"
    assert by_policy["lru"][2] == "0/10"
    assert by_policy["lru"][3] == 16
    # Random replacement cannot give the paper's determinism (either the
    # full-set chase is unreliable or discovery itself falls apart).
    random_row = by_policy["random"]
    assert random_row[1] != "10/10" or "failed" in str(random_row[1])
