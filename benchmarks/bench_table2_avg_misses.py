"""Table II: average misses over monitored sets vs MLP hidden width."""

import pytest

from repro.experiments import table2_neurons


@pytest.mark.paper
def test_table2_avg_misses(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: table2_neurons.run(seed=9), rounds=1, iterations=1
    )
    print_result(result)
    report = result.extras["report"]
    # Paper shape: strictly monotone growth of avg misses with width.
    assert report.is_monotonic()
    # The attack loop closes: the unknown victim's width is recovered.
    true_hidden, inferred = result.extras["inferred_unknown"]
    assert inferred == true_hidden
