"""Fig 14: MLP memorygram intensity, 128 vs 512 hidden neurons."""

import pytest

from repro.experiments import fig14_mlp_memorygram


@pytest.mark.paper
def test_fig14_mlp_memorygram(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig14_mlp_memorygram.run(seed=9, hidden_sizes=(128, 512)),
        rounds=1,
        iterations=1,
    )
    print_result(result)
    grams = result.extras["memorygrams"]
    # The paper's visual claim, quantified: per-bin intensity grows with H.
    intensity_128 = grams[128].total_misses() / max(1, grams[128].num_bins)
    intensity_512 = grams[512].total_misses() / max(1, grams[512].num_bins)
    assert intensity_512 > 1.5 * intensity_128
