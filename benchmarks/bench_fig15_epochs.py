"""Fig 15: the epoch hyperparameter read off the memorygram."""

import pytest

from repro.experiments import fig15_epochs


@pytest.mark.paper
def test_fig15_epochs(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig15_epochs.run(seed=9, epoch_counts=(1, 2, 3)),
        rounds=1,
        iterations=1,
    )
    print_result(result)
    # Every configured epoch count is recovered exactly (the paper shows
    # the two-epoch case; we sweep 1-3).
    for true_epochs, inferred, correct in result.rows:
        assert correct, (true_epochs, inferred)
