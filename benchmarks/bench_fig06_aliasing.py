"""Fig 6: aliased eviction sets detected and eliminated."""

import pytest

from repro.experiments import fig06_aliasing


@pytest.mark.paper
def test_fig06_aliasing(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig06_aliasing.run(seed=7), rounds=1, iterations=1
    )
    print_result(result)
    by_pair = {row[0]: row[1] for row in result.rows}
    assert by_pair["two sets on the same physical set"] is True
    assert by_pair["two sets on distinct physical sets"] is False
    assert result.extras["kept_after_dedup"] == 2
