"""Ablation: forward error correction over the raw covert channel.

The paper reports raw error rates; this bench quantifies what a deployed
channel would do about them -- Hamming(7,4) trades 4/7 of the bandwidth
for (near-)zero residual error left of the Fig 9 knee.
"""

import numpy as np
import pytest

from repro.config import DGXSpec
from repro.core.covert.channel import CovertChannel
from repro.core.covert.encoding import bit_error_rate
from repro.runtime.api import Runtime


@pytest.mark.paper
def test_ablation_ecc(benchmark):
    def experiment():
        rng = np.random.default_rng(6)
        payload = [int(b) for b in rng.integers(0, 2, 384)]

        runtime = Runtime(DGXSpec.dgx1(), seed=6)
        channel = CovertChannel(runtime)
        channel.setup(num_sets=4)
        raw = channel.transmit(payload, strict=False)

        runtime2 = Runtime(DGXSpec.dgx1(), seed=6)
        channel2 = CovertChannel(runtime2)
        channel2.setup(num_sets=4)
        recovered, coded_raw, corrections = channel2.transmit_reliable(payload)
        return payload, raw, recovered, coded_raw, corrections

    payload, raw, recovered, coded_raw, corrections = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    residual = bit_error_rate(payload, recovered)

    print()
    print("== ablation: Hamming(7,4) over the covert channel ==")
    print(f"raw channel   : error {raw.error_rate * 100:.2f}%  "
          f"bandwidth {raw.bandwidth_bytes_per_s / 1024:.0f} KB/s")
    print(f"coded channel : residual error {residual * 100:.2f}%  "
          f"goodput {coded_raw.bandwidth_bytes_per_s * 4 / 7 / 1024:.0f} KB/s  "
          f"({corrections} corrections)")

    assert residual <= raw.error_rate
    assert residual <= 0.01
    assert len(recovered) == len(payload)
