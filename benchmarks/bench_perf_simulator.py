"""Simulator performance harness: epoch engine vs scalar reference.

Measures end-to-end simulator throughput (simulated memory accesses
serviced per wall-clock second, from ``Engine.stats``) on attack-shaped
scenarios.  The two arms compare the whole dispatch stack, not just the
cache backend:

* ``vectorized`` -- the columnar epoch engine: vectorized L2 backend
  *and* epoch dispatch (attack kernels yield ``AccessEpoch`` plans that
  the engine advances in bulk).
* ``scalar``     -- the pre-epoch reference: scalar L2 backend, per-op
  coroutine dispatch (``epoch_dispatch=False``), and the per-element
  Python fabric walk (the scalar backend flips
  ``Interconnect.vectorized``), the differential-test oracle.

Scenarios:

* ``probe_storm``   -- a 256-set x 16-way memorygram probe storm on the
  full DGX-1, the memorygram probing hot path.  The acceptance bar is a
  >= 5x accesses/sec speedup; the epoch engine records ~10x.
* ``memorygram``    -- a full remote memorygram capture of a victim
  workload on the paper-scale small box (setup excluded, capture phase
  timed), probing 64 monitored sets per epoch block.
* ``covert_frames`` -- quick covert-channel frames on the tiny box.
* ``covert_stream`` -- a paper-scale covert transmission (16-way sets,
  8 pairs, long 12k-cycle slots).  Covert bursts are one eviction set
  wide by construction, so this scenario bounds the *fused scalar loop*
  advantage rather than the wide vector path; expect ~1.5-2x, not 10x.
* ``link_covert``   -- NVLink fabric covert channel (no L2 traffic):
  wide LinkFlood slots against the columnar fabric core vs the scalar
  per-transfer lane walk.
* ``linkgram``      -- linkgram localization sweep: 2-transfer probe
  pairs riding the fused fabric closure while a bursty victim floods
  one link through the numpy lane scan.

Each run appends one record to ``benchmarks/perf_trajectory.json`` so
throughput can be tracked across revisions.

Run standalone (``make perf``)::

    PYTHONPATH=src python benchmarks/bench_perf_simulator.py

the CI perf-smoke gate (memorygram + covert + fabric scenarios, median
of 3)::

    PYTHONPATH=src python benchmarks/bench_perf_simulator.py --smoke

or as a benchmark::

    pytest benchmarks/bench_perf_simulator.py --benchmark-only
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import statistics
import tempfile
import time
from collections import defaultdict
from typing import Dict, List, Optional

import pytest

from repro.config import DGXSpec
from repro.core.covert.channel import CovertChannel
from repro.core.sidechannel.prober import MemorygramProber
from repro.runtime.api import Runtime
from repro.sim.ops import ProbeEpoch
from repro.telemetry import attach_metrics, attach_tracer
from repro.workloads.vectoradd import VectorAdd

TRAJECTORY_PATH = pathlib.Path(__file__).parent / "perf_trajectory.json"

BACKENDS = ("vectorized", "scalar")

#: Arm name -> (L2 backend, epoch dispatch).  The fast arm exercises the
#: whole columnar stack; the slow arm is the scalar differential oracle.
ARM_CONFIG = {"vectorized": ("vectorized", True), "scalar": ("scalar", False)}

#: Per-arm sweep counts for the probe storm: the scalar reference is
#: given fewer sweeps so the comparison stays quick; throughput is
#: normalized per second, so the counts do not bias the ratio.
STORM_SWEEPS = {"vectorized": 24, "scalar": 3}


def _runtime(spec: DGXSpec, arm: str, seed: int) -> Runtime:
    backend, epochs = ARM_CONFIG[arm]
    return Runtime(
        spec.with_l2_backend(backend), seed=seed, epoch_dispatch=epochs
    )


def _stats_record(stats, **extra) -> Dict:
    record = {
        "events": stats.events,
        "accesses": stats.accesses,
        "wall_seconds": round(stats.wall_seconds, 6),
        "events_per_sec": round(stats.events_per_sec),
        "accesses_per_sec": round(stats.accesses_per_sec),
    }
    record.update(extra)
    return record


# ----------------------------------------------------------------------
# Scenario: 256-set probe storm on the full DGX-1
# ----------------------------------------------------------------------
def _ground_truth_sets(
    rt: Runtime, proc, home_gpu: int, num_sets: int, ways: int
):
    """Group buffer lines by their physical L2 set (ground truth) and
    return ``num_sets`` word-index groups of ``ways`` lines each."""
    spec = rt.system.spec.gpu
    words_per_line = spec.cache.line_size // 8
    colors = max(1, spec.cache.set_stride // spec.page_size)
    pages = colors * (ways + 8)  # headroom so enough sets fill up
    buf = rt.malloc_lines(
        proc, home_gpu, pages * spec.page_size // spec.cache.line_size, name="storm"
    )
    groups: Dict[int, List[int]] = defaultdict(list)
    for line in range(buf.num_words // words_per_line):
        word = line * words_per_line
        groups[rt.system.set_index_of(buf, word)].append(word)
    # One tuple, built once and re-yielded verbatim: the system caches
    # the epoch's flatten/translate plan by (buffer token, sets identity),
    # the same idiom the prober uses for its sweep blocks.
    sets = tuple(
        tuple(words[:ways]) for words in groups.values() if len(words) >= ways
    )
    if len(sets) < num_sets:
        raise RuntimeError(
            f"ground truth covered only {len(sets)}/{num_sets} sets; "
            "increase the allocation headroom"
        )
    return buf, sets[:num_sets]


def run_probe_storm(
    backend: str,
    num_sets: int = 256,
    seed: int = 7,
    traced: bool = False,
    metered: bool = False,
) -> Dict:
    spec = DGXSpec.dgx1()
    rt = _runtime(spec, backend, seed)
    proc = rt.create_process("storm_spy")
    rt.enable_peer_access(proc, 1, 0)
    buf, sets = _ground_truth_sets(
        rt, proc, home_gpu=0, num_sets=num_sets, ways=spec.gpu.cache.associativity
    )
    sweeps = STORM_SWEEPS[backend]

    def storm():
        for _ in range(sweeps):
            yield ProbeEpoch(buf, sets, parallel=True)

    if traced:
        attach_tracer(rt, sample_cadence=50_000.0)
    if metered:
        attach_metrics(rt)
    rt.engine.stats.reset()
    rt.run_kernel(storm(), 1, proc)
    return _stats_record(rt.engine.stats, sweeps=sweeps, num_sets=num_sets)


def run_tracing_overhead(num_sets: int = 256, seed: int = 7) -> Dict:
    """Tracing-off vs tracing-on throughput on the vectorized probe storm.

    'off' is the plain engine (the nullable hook costs one branch per
    dispatched op); 'on' attaches the full tracer (event ring + counter
    sampler).  The overhead record lands in ``perf_trajectory.json`` so
    telemetry regressions are visible across revisions.
    """
    off = run_probe_storm("vectorized", num_sets=num_sets, seed=seed)
    on = run_probe_storm("vectorized", num_sets=num_sets, seed=seed, traced=True)
    overhead = (
        1.0 - on["accesses_per_sec"] / off["accesses_per_sec"]
        if off["accesses_per_sec"]
        else None
    )
    return {
        "off": off,
        "on": on,
        "overhead_pct": round(overhead * 100.0, 2) if overhead is not None else None,
    }


def run_metrics_overhead(num_sets: int = 256, seed: int = 7) -> Dict:
    """Metrics-off vs metrics-on throughput on the vectorized probe storm.

    Same shape as :func:`run_tracing_overhead`, but 'on' attaches the
    :class:`~repro.telemetry.metrics.AttackMetrics` registry instead of
    the tracer.  Metrics updates land at epoch granularity (never per
    access), so the overhead should sit far below the tracing figure --
    the CI gate holds it under :data:`METRICS_OVERHEAD_GATE`.
    """
    off = run_probe_storm("vectorized", num_sets=num_sets, seed=seed)
    on = run_probe_storm("vectorized", num_sets=num_sets, seed=seed, metered=True)
    overhead = (
        1.0 - on["accesses_per_sec"] / off["accesses_per_sec"]
        if off["accesses_per_sec"]
        else None
    )
    return {
        "off": off,
        "on": on,
        "overhead_pct": round(overhead * 100.0, 2) if overhead is not None else None,
    }


# ----------------------------------------------------------------------
# Scenario: memorygram capture on the small box
# ----------------------------------------------------------------------
def run_memorygram(backend: str, seed: int = 3) -> Dict:
    """Paper-scale capture: 16-way small box, 64 monitored sets.

    ``sets_per_block=64`` probes the whole monitored range in one epoch
    per sweep, so the vector core services 64-wide rounds; the scalar
    arm walks the identical stream per access.  Block width is the
    amortization lever -- at the old 16-set blocks the epoch arm leaves
    most of its batching on the table (see docs/performance.md).
    """
    spec = DGXSpec.small(num_sets=256, associativity=16)
    rt = _runtime(spec, backend, seed)
    prober = MemorygramProber(rt, victim_gpu=0, spy_gpu=1)
    prober.setup(num_sets=64)
    rt.engine.stats.reset()
    gram = prober.record(
        VectorAdd(scale=0.05, seed=seed, passes=2),
        bin_cycles=10_000.0,
        sets_per_block=64,
    )
    return _stats_record(rt.engine.stats, total_misses=int(gram.total_misses()))


# ----------------------------------------------------------------------
# Scenario: covert-channel frames on the small box
# ----------------------------------------------------------------------
def run_covert_frames(backend: str, num_bits: int = 64, seed: int = 5) -> Dict:
    spec = DGXSpec.small(num_sets=64, associativity=4)
    rt = _runtime(spec, backend, seed)
    channel = CovertChannel(rt, trojan_gpu=0, spy_gpu=1)
    channel.setup(num_sets=4)
    bits = [random.Random(seed).randrange(2) for _ in range(num_bits)]
    rt.engine.stats.reset()
    outcome = channel.transmit(bits, strict=False)
    return _stats_record(
        rt.engine.stats, error_rate=round(outcome.error_rate, 4)
    )


# ----------------------------------------------------------------------
# Scenario: paper-scale covert stream (16-way sets, long slots)
# ----------------------------------------------------------------------
def run_covert_stream(
    backend: str, num_bits: int = 32, seed: int = 5, slot_cycles: float = 12_000.0
) -> Dict:
    """Covert transmission at paper scale: 8 pairs of 16-way eviction sets.

    Every prime/probe burst is one eviction set (16 accesses) by
    construction, far below the vector core's width cutoff, so the epoch
    arm's win comes from the fused small-burst loop plus epoch-granular
    event dispatch -- a bounded ~1.5-2x, not the wide-path 10x.  The
    scenario exists to pin that floor: a regression here means the fused
    loop (not the vector path) broke.
    """
    spec = DGXSpec.small(num_sets=256, associativity=16)
    rt = _runtime(spec, backend, seed)
    channel = CovertChannel(rt, trojan_gpu=0, spy_gpu=1)
    channel.setup(num_sets=8)
    bits = [random.Random(seed).randrange(2) for _ in range(num_bits)]
    rt.engine.stats.reset()
    outcome = channel.transmit(bits, strict=False, slot_cycles=slot_cycles)
    return _stats_record(
        rt.engine.stats,
        error_rate=round(outcome.error_rate, 4),
        slot_cycles=slot_cycles,
    )


# ----------------------------------------------------------------------
# Scenario: NVLink fabric covert channel on the small box
# ----------------------------------------------------------------------
def run_link_covert(
    backend: str,
    num_bits: int = 64,
    seed: int = 9,
    slot_cycles: float = 24_000.0,
) -> Dict:
    """Fabric-channel frames: LinkFlood slots + probe sweeps, no L2 traffic.

    Exercises the interconnect lane model rather than the cache fast
    path.  Wide slots make each one-bit flood thousands of transfers, so
    the epoch arm rides the vectorized lane scan while the scalar oracle
    walks every transfer through the Python least-busy-lane loop; the
    spy's small probe bursts stay on the fused scalar closure on both
    arms.  Received bits are bit-identical across arms by construction
    (the differential suite enforces it), so the accesses/sec ratio is a
    pure wall-clock ratio.
    """
    from repro.core.linkchannel.covert import LinkCovertChannel

    spec = DGXSpec.small(num_gpus=4)
    rt = _runtime(spec, backend, seed)
    channel = LinkCovertChannel.auto(rt, num_links=1)
    channel.setup()
    bits = [random.Random(seed).randrange(2) for _ in range(num_bits)]
    rt.engine.stats.reset()
    outcome = channel.transmit(bits, strict=False, slot_cycles=slot_cycles)
    return _stats_record(
        rt.engine.stats,
        error_rate=round(outcome.error_rate, 4),
        slot_cycles=slot_cycles,
    )


# ----------------------------------------------------------------------
# Scenario: linkgram localization sweep against a bursty victim
# ----------------------------------------------------------------------
def run_linkgram(backend: str, seed: int = 3) -> Dict:
    """Linkgram capture: pair probes sweep the fabric, one link floods.

    The recorder's 2-transfer probe bursts hit the fused pair-probe
    closure (the unrolled 2-lane walk) on the epoch arm; the high-duty
    victim bursts (58k of every 60k cycles) go down the numpy lane scan
    in one LinkEpoch per victim kernel.  The scalar oracle services the
    identical stream one transfer at a time.  Localization and the
    recovered burst period must match across arms bit-for-bit.
    """
    from repro.core.linkchannel.sidechannel import LinkgramRecorder

    spec = DGXSpec.small(num_gpus=4)
    rt = _runtime(spec, backend, seed)
    recorder = LinkgramRecorder(
        rt, bin_cycles=15_000.0, burst=2, spacing_cycles=6_000.0
    )
    recorder.setup()
    victim = recorder.victim_launcher(
        1,
        2,
        duration_cycles=1_200_000.0,
        period_cycles=60_000.0,
        burst_cycles=58_000.0,
    )
    rt.engine.stats.reset()
    gram = recorder.record(
        duration_cycles=1_200_000.0, victim_launcher=victim
    )
    endpoints = recorder.locate(gram)
    return _stats_record(
        rt.engine.stats,
        located=list(endpoints),
        burst_period=recorder.burst_period(gram),
    )


# ----------------------------------------------------------------------
# Scenario: the whole small-box evaluation report (executor + cache)
# ----------------------------------------------------------------------
def run_report_small(
    jobs: int = 1, seed: int = 0, cache_dir: Optional[str] = None
) -> Dict:
    """One ``gpu-spy report --small`` run; wall clock of the whole report."""
    from repro.experiments.report import generate_report

    start = time.perf_counter()
    text = generate_report(
        seed=seed,
        small=True,
        jobs=jobs,
        cache_dir=pathlib.Path(cache_dir) if cache_dir else None,
    )
    wall = time.perf_counter() - start
    return {
        "jobs": jobs,
        "cache": "warm" if cache_dir and any(os.scandir(cache_dir)) else (
            "cold" if cache_dir else "off"
        ),
        "wall_seconds": round(wall, 3),
        "sections_ok": text.count(" ok]"),
        "sections_failed": text.count(": FAILED =="),
    }


def run_report_small_suite(seed: int = 0) -> Dict:
    """Sequential vs parallel vs warm-cache report runs.

    ``parallel_speedup`` (jobs=1 cold over jobs=4 cold) is only
    meaningful on a multi-core host; ``cpu_count`` is recorded so
    trajectory entries from starved runners read as what they are.
    """
    results: Dict[str, Dict] = {"jobs1_cold": run_report_small(jobs=1, seed=seed)}
    with tempfile.TemporaryDirectory(prefix="repro-report-cache-") as cache_dir:
        # Same dir both times: first run populates, second run hits.
        results["jobs4_cold"] = run_report_small(jobs=4, seed=seed, cache_dir=cache_dir)
        results["jobs4_warm"] = run_report_small(jobs=4, seed=seed, cache_dir=cache_dir)
    parallel = results["jobs4_cold"]["wall_seconds"]
    results["parallel_speedup"] = (
        round(results["jobs1_cold"]["wall_seconds"] / parallel, 2) if parallel else None
    )
    results["cpu_count"] = os.cpu_count()
    return results


SCENARIOS = {
    "probe_storm": run_probe_storm,
    "memorygram": run_memorygram,
    "covert_frames": run_covert_frames,
    "covert_stream": run_covert_stream,
    "link_covert": run_link_covert,
    "linkgram": run_linkgram,
}

#: CI perf-smoke gates: scenario -> minimum epoch/scalar speedup (median
#: of three runs).  The probing scenarios carry the 3x bar; the covert
#: stream's bursts are one 16-way eviction set wide by construction, so
#: its dispatch-level win is structurally bounded (see the scenario
#: docstring) and its gate is a regression tripwire for the fused loop,
#: not a vector-path bar.  The fabric scenarios measure ~11-12x against
#: the scalar fabric walk on a quiet host (recorded in the trajectory);
#: their 8x floors are the columnar-fabric acceptance bar with headroom
#: for noisy shared runners.
SMOKE_GATES = {
    "probe_storm": 3.0,
    "memorygram": 3.0,
    "covert_stream": 1.3,
    "link_covert": 8.0,
    "linkgram": 8.0,
}

#: CI observability gate: metrics-on probe storm may run at most this
#: factor slower than metrics-off (median of three interleaved rounds).
METRICS_OVERHEAD_GATE = 1.10


def run_metrics_gate(rounds: int = 3) -> Dict:
    """Median-of-N metrics-on slowdown on the probe storm (CI gate).

    Interleaves off/on rounds so host-load drift hits both arms alike;
    ``ok`` iff the median slowdown stays under
    :data:`METRICS_OVERHEAD_GATE`.
    """
    off, on = [], []
    for _ in range(rounds):
        off.append(run_probe_storm("vectorized")["accesses_per_sec"])
        on.append(
            run_probe_storm("vectorized", metered=True)["accesses_per_sec"]
        )
    slowdown = statistics.median(off) / statistics.median(on)
    return {
        "off": statistics.median(off),
        "on": statistics.median(on),
        "slowdown": round(slowdown, 3),
        "ceiling": METRICS_OVERHEAD_GATE,
        "ok": slowdown <= METRICS_OVERHEAD_GATE,
    }


def run_smoke(rounds: int = 3) -> Dict:
    """Median-of-N speedups for the gated scenarios (CI perf-smoke job).

    Interleaves the arms (fast, slow, fast, slow, ...) so host-load drift
    hits both arms alike, then gates the median ratio per scenario.
    """
    results: Dict[str, Dict] = {}
    failures = []
    for name, floor in SMOKE_GATES.items():
        scenario = SCENARIOS[name]
        fast, slow = [], []
        for _ in range(rounds):
            fast.append(scenario("vectorized")["accesses_per_sec"])
            slow.append(scenario("scalar")["accesses_per_sec"])
        speedup = statistics.median(fast) / statistics.median(slow)
        results[name] = {
            "vectorized": statistics.median(fast),
            "scalar": statistics.median(slow),
            "speedup": round(speedup, 2),
            "floor": floor,
            "ok": speedup >= floor,
        }
        if speedup < floor:
            failures.append(f"{name}: {speedup:.2f}x < {floor}x floor")
    gate = run_metrics_gate(rounds)
    results["metrics_overhead"] = gate
    if not gate["ok"]:
        failures.append(
            f"metrics_overhead: {gate['slowdown']:.3f}x > "
            f"{gate['ceiling']}x ceiling"
        )
    results["failures"] = failures
    return results


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_all() -> Dict:
    results: Dict[str, Dict] = {}
    for name, scenario in SCENARIOS.items():
        results[name] = {}
        for backend in BACKENDS:
            results[name][backend] = scenario(backend)
        fast = results[name]["vectorized"]["accesses_per_sec"]
        slow = results[name]["scalar"]["accesses_per_sec"]
        results[name]["speedup"] = round(fast / slow, 2) if slow else None
    results["tracing"] = run_tracing_overhead()
    results["metrics"] = run_metrics_overhead()
    results["report_small"] = run_report_small_suite()
    return results


def append_trajectory(results: Dict) -> None:
    trajectory = []
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    trajectory.append(
        {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), "scenarios": results}
    )
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")


def format_results(results: Dict) -> str:
    lines = [
        f"{'scenario':<14}  {'backend':<10}  {'accesses/s':>12}  "
        f"{'events/s':>10}  {'wall s':>8}"
    ]
    for name, entry in results.items():
        if name == "report_small":
            for mode in ("jobs1_cold", "jobs4_cold", "jobs4_warm"):
                record = entry[mode]
                lines.append(
                    f"{name:<14}  {mode:<10}  "
                    f"{record['sections_ok']:>9} ok  "
                    f"{record['sections_failed']:>8} bad  "
                    f"{record['wall_seconds']:>8.3f}"
                )
            lines.append(
                f"{name:<14}  {'speedup':<10}  {entry['parallel_speedup']:>11}x"
                f"  (on {entry['cpu_count']} cpus)"
            )
            continue
        if name in ("tracing", "metrics"):
            for mode in ("off", "on"):
                record = entry[mode]
                lines.append(
                    f"{name:<14}  {mode:<10}  "
                    f"{record['accesses_per_sec']:>12,}  "
                    f"{record['events_per_sec']:>10,}  "
                    f"{record['wall_seconds']:>8.3f}"
                )
            lines.append(
                f"{name:<14}  {'overhead':<10}  {entry['overhead_pct']:>11}%"
            )
            continue
        for backend in BACKENDS:
            record = entry[backend]
            lines.append(
                f"{name:<14}  {backend:<10}  {record['accesses_per_sec']:>12,}  "
                f"{record['events_per_sec']:>10,}  {record['wall_seconds']:>8.3f}"
            )
        lines.append(f"{name:<14}  {'speedup':<10}  {entry['speedup']:>11}x")
    return "\n".join(lines)


def main() -> None:
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run only the gated scenarios (memorygram, covert, fabric; "
        "median of 3) and exit nonzero if any speedup drops below its "
        "floor",
    )
    options = parser.parse_args()
    if options.smoke:
        results = run_smoke()
        for name, entry in results.items():
            if name == "failures":
                continue
            if name == "metrics_overhead":
                print(
                    f"{name:<14}  off {entry['off']:>14,.0f}/s  "
                    f"on {entry['on']:>16,.0f}/s  "
                    f"{entry['slowdown']:>6}x  (ceiling {entry['ceiling']}x)  "
                    f"{'ok' if entry['ok'] else 'FAIL'}"
                )
                continue
            print(
                f"{name:<14}  epoch {entry['vectorized']:>12,.0f}/s  "
                f"scalar {entry['scalar']:>12,.0f}/s  "
                f"{entry['speedup']:>6}x  (floor {entry['floor']}x)  "
                f"{'ok' if entry['ok'] else 'FAIL'}"
            )
        append_trajectory({"perf_smoke": results})
        if results["failures"]:
            print("\nperf-smoke FAILED: " + "; ".join(results["failures"]))
            sys.exit(1)
        print("\nperf-smoke ok")
        return
    results = run_all()
    print(format_results(results))
    append_trajectory(results)
    print(f"\ntrajectory appended to {TRAJECTORY_PATH}")


# ----------------------------------------------------------------------
# Benchmark-suite entry point
# ----------------------------------------------------------------------
@pytest.mark.paper
def test_perf_probe_storm_speedup(benchmark, print_result):
    """The vectorized backend must clear 5x scalar throughput on the
    256-set memorygram probe storm (the PR's acceptance bar)."""
    results = benchmark.pedantic(
        lambda: {"probe_storm": {b: run_probe_storm(b) for b in BACKENDS}},
        rounds=1,
        iterations=1,
    )
    storm = results["probe_storm"]
    speedup = (
        storm["vectorized"]["accesses_per_sec"]
        / storm["scalar"]["accesses_per_sec"]
    )
    storm["speedup"] = round(speedup, 2)
    print_result(format_results(results))
    append_trajectory(results)
    assert speedup >= 5.0, f"vectorized speedup {speedup:.1f}x below the 5x bar"


@pytest.mark.paper
def test_perf_memorygram_speedup(benchmark, print_result):
    """The epoch arm must clear 3x on the end-to-end memorygram capture.

    The capture includes the victim's own (epoch-less) execution on both
    arms, so this sits well below the probing-only storm ratio; with
    64-set epoch blocks the measured median is ~7-8x, and 3x is the
    regression floor (the same bar the CI perf-smoke job enforces).
    Median of three seeds to keep scheduler noise out."""

    def measure():
        return {
            backend: [
                run_memorygram(backend, seed=3 + i)["accesses_per_sec"]
                for i in range(3)
            ]
            for backend in BACKENDS
        }

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = statistics.median(rates["vectorized"]) / statistics.median(
        rates["scalar"]
    )
    print_result(
        f"memorygram epoch/scalar = {ratio:.2f}x "
        f"(epoch {rates['vectorized']}, scalar {rates['scalar']})"
    )
    assert ratio >= 3.0, (
        f"epoch engine dropped to {ratio:.2f}x scalar on memorygram"
    )


@pytest.mark.paper
def test_perf_covert_stream_no_regression(benchmark, print_result):
    """The epoch arm must not lose to scalar on the paper-scale covert
    stream.  Covert bursts are one 16-way eviction set wide, so the win
    is the fused small-burst loop's (~1.5-2x measured); parity is the
    hard floor -- below it the fused loop is a pessimization."""

    def measure():
        return {
            backend: [
                run_covert_stream(backend, seed=5 + i)["accesses_per_sec"]
                for i in range(3)
            ]
            for backend in BACKENDS
        }

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = statistics.median(rates["vectorized"]) / statistics.median(
        rates["scalar"]
    )
    print_result(
        f"covert_stream epoch/scalar = {ratio:.2f}x "
        f"(epoch {rates['vectorized']}, scalar {rates['scalar']})"
    )
    assert ratio >= 1.0, (
        f"epoch engine regressed to {ratio:.2f}x scalar on the covert stream"
    )


@pytest.mark.paper
def test_perf_report_parallel_speedup(benchmark, print_result):
    """`report --small --jobs 4` must be >= 3x the sequential run and keep
    every section healthy.  The wall-clock bar only applies on hosts with
    at least 4 CPUs -- on starved runners the suite still runs (pinning
    correctness of the parallel path) and records the timings."""
    results = benchmark.pedantic(
        lambda: {"report_small": run_report_small_suite()}, rounds=1, iterations=1
    )
    suite = results["report_small"]
    print_result(format_results(results))
    append_trajectory(results)
    for mode in ("jobs1_cold", "jobs4_cold", "jobs4_warm"):
        assert suite[mode]["sections_failed"] == 0, f"{mode} had failed sections"
        assert suite[mode]["sections_ok"] == suite["jobs1_cold"]["sections_ok"]
    if (os.cpu_count() or 1) >= 4:
        assert suite["parallel_speedup"] >= 3.0, (
            f"jobs=4 speedup {suite['parallel_speedup']}x below the 3x bar "
            f"on a {os.cpu_count()}-cpu host"
        )


if __name__ == "__main__":
    main()
