"""Simulator performance harness: vectorized vs scalar L2 backend.

Measures end-to-end simulator throughput (simulated memory accesses
serviced per wall-clock second, from ``Engine.stats``) on three
attack-shaped scenarios:

* ``probe_storm``   -- a 256-set x 16-way memorygram probe storm on the
  full DGX-1, the shape the vectorized fast path was built for.  The
  acceptance bar is a >= 5x accesses/sec speedup over the scalar
  reference backend.
* ``memorygram``    -- a full remote memorygram capture of a victim
  workload on the small box (setup excluded, capture phase timed).
* ``covert_frames`` -- covert-channel frames (trojan+spy transmission)
  on the small box.

Each run appends one record to ``benchmarks/perf_trajectory.json`` so
throughput can be tracked across revisions.

Run standalone (``make perf``)::

    PYTHONPATH=src python benchmarks/bench_perf_simulator.py

or as a benchmark::

    pytest benchmarks/bench_perf_simulator.py --benchmark-only
"""

from __future__ import annotations

import json
import os
import pathlib
import random
import statistics
import tempfile
import time
from collections import defaultdict
from typing import Dict, List, Optional

import pytest

from repro.config import DGXSpec
from repro.core.covert.channel import CovertChannel
from repro.core.sidechannel.prober import MemorygramProber
from repro.runtime.api import Runtime
from repro.sim.ops import ProbeEpoch
from repro.telemetry import attach_tracer
from repro.workloads.vectoradd import VectorAdd

TRAJECTORY_PATH = pathlib.Path(__file__).parent / "perf_trajectory.json"

BACKENDS = ("vectorized", "scalar")

#: Per-backend sweep counts for the probe storm: the scalar reference is
#: given fewer sweeps so the comparison stays quick; throughput is
#: normalized per second, so the counts do not bias the ratio.
STORM_SWEEPS = {"vectorized": 24, "scalar": 4}


def _stats_record(stats, **extra) -> Dict:
    record = {
        "events": stats.events,
        "accesses": stats.accesses,
        "wall_seconds": round(stats.wall_seconds, 6),
        "events_per_sec": round(stats.events_per_sec),
        "accesses_per_sec": round(stats.accesses_per_sec),
    }
    record.update(extra)
    return record


# ----------------------------------------------------------------------
# Scenario: 256-set probe storm on the full DGX-1
# ----------------------------------------------------------------------
def _ground_truth_sets(
    rt: Runtime, proc, home_gpu: int, num_sets: int, ways: int
):
    """Group buffer lines by their physical L2 set (ground truth) and
    return ``num_sets`` word-index groups of ``ways`` lines each."""
    spec = rt.system.spec.gpu
    words_per_line = spec.cache.line_size // 8
    colors = max(1, spec.cache.set_stride // spec.page_size)
    pages = colors * (ways + 8)  # headroom so enough sets fill up
    buf = rt.malloc_lines(
        proc, home_gpu, pages * spec.page_size // spec.cache.line_size, name="storm"
    )
    groups: Dict[int, List[int]] = defaultdict(list)
    for line in range(buf.num_words // words_per_line):
        word = line * words_per_line
        groups[rt.system.set_index_of(buf, word)].append(word)
    sets = [words[:ways] for words in groups.values() if len(words) >= ways]
    if len(sets) < num_sets:
        raise RuntimeError(
            f"ground truth covered only {len(sets)}/{num_sets} sets; "
            "increase the allocation headroom"
        )
    return buf, sets[:num_sets]


def run_probe_storm(
    backend: str, num_sets: int = 256, seed: int = 7, traced: bool = False
) -> Dict:
    spec = DGXSpec.dgx1().with_l2_backend(backend)
    rt = Runtime(spec, seed=seed)
    proc = rt.create_process("storm_spy")
    rt.enable_peer_access(proc, 1, 0)
    buf, sets = _ground_truth_sets(
        rt, proc, home_gpu=0, num_sets=num_sets, ways=spec.gpu.cache.associativity
    )
    sweeps = STORM_SWEEPS[backend]

    def storm():
        for _ in range(sweeps):
            yield ProbeEpoch(buf, sets, parallel=True)

    if traced:
        attach_tracer(rt, sample_cadence=50_000.0)
    rt.engine.stats.reset()
    rt.run_kernel(storm(), 1, proc)
    return _stats_record(rt.engine.stats, sweeps=sweeps, num_sets=num_sets)


def run_tracing_overhead(num_sets: int = 256, seed: int = 7) -> Dict:
    """Tracing-off vs tracing-on throughput on the vectorized probe storm.

    'off' is the plain engine (the nullable hook costs one branch per
    dispatched op); 'on' attaches the full tracer (event ring + counter
    sampler).  The overhead record lands in ``perf_trajectory.json`` so
    telemetry regressions are visible across revisions.
    """
    off = run_probe_storm("vectorized", num_sets=num_sets, seed=seed)
    on = run_probe_storm("vectorized", num_sets=num_sets, seed=seed, traced=True)
    overhead = (
        1.0 - on["accesses_per_sec"] / off["accesses_per_sec"]
        if off["accesses_per_sec"]
        else None
    )
    return {
        "off": off,
        "on": on,
        "overhead_pct": round(overhead * 100.0, 2) if overhead is not None else None,
    }


# ----------------------------------------------------------------------
# Scenario: memorygram capture on the small box
# ----------------------------------------------------------------------
def run_memorygram(backend: str, seed: int = 3) -> Dict:
    spec = DGXSpec.small(num_sets=64, associativity=4).with_l2_backend(backend)
    rt = Runtime(spec, seed=seed)
    prober = MemorygramProber(rt, victim_gpu=0, spy_gpu=1)
    prober.setup(num_sets=32)
    rt.engine.stats.reset()
    gram = prober.record(
        VectorAdd(scale=0.05, seed=seed, passes=2), bin_cycles=10_000.0
    )
    return _stats_record(rt.engine.stats, total_misses=int(gram.total_misses()))


# ----------------------------------------------------------------------
# Scenario: covert-channel frames on the small box
# ----------------------------------------------------------------------
def run_covert_frames(backend: str, num_bits: int = 64, seed: int = 5) -> Dict:
    spec = DGXSpec.small(num_sets=64, associativity=4).with_l2_backend(backend)
    rt = Runtime(spec, seed=seed)
    channel = CovertChannel(rt, trojan_gpu=0, spy_gpu=1)
    channel.setup(num_sets=4)
    bits = [random.Random(seed).randrange(2) for _ in range(num_bits)]
    rt.engine.stats.reset()
    outcome = channel.transmit(bits, strict=False)
    return _stats_record(
        rt.engine.stats, error_rate=round(outcome.error_rate, 4)
    )


# ----------------------------------------------------------------------
# Scenario: NVLink fabric covert channel on the small box
# ----------------------------------------------------------------------
def run_link_covert(backend: str, num_bits: int = 96, seed: int = 9) -> Dict:
    """Fabric-channel frames: LinkProbe floods + probes, no L2 traffic.

    Exercises the interconnect lane model (transfer_batch reservations,
    per-edge counters) rather than the cache fast path; both backends
    should land near the same throughput since the channel never touches
    an eviction set.
    """
    from repro.core.linkchannel.covert import LinkCovertChannel

    spec = DGXSpec.small(num_gpus=4).with_l2_backend(backend)
    rt = Runtime(spec, seed=seed)
    channel = LinkCovertChannel.auto(rt, num_links=1)
    channel.setup()
    bits = [random.Random(seed).randrange(2) for _ in range(num_bits)]
    rt.engine.stats.reset()
    outcome = channel.transmit(bits, strict=False)
    return _stats_record(
        rt.engine.stats, error_rate=round(outcome.error_rate, 4)
    )


# ----------------------------------------------------------------------
# Scenario: the whole small-box evaluation report (executor + cache)
# ----------------------------------------------------------------------
def run_report_small(
    jobs: int = 1, seed: int = 0, cache_dir: Optional[str] = None
) -> Dict:
    """One ``gpu-spy report --small`` run; wall clock of the whole report."""
    from repro.experiments.report import generate_report

    start = time.perf_counter()
    text = generate_report(
        seed=seed,
        small=True,
        jobs=jobs,
        cache_dir=pathlib.Path(cache_dir) if cache_dir else None,
    )
    wall = time.perf_counter() - start
    return {
        "jobs": jobs,
        "cache": "warm" if cache_dir and any(os.scandir(cache_dir)) else (
            "cold" if cache_dir else "off"
        ),
        "wall_seconds": round(wall, 3),
        "sections_ok": text.count(" ok]"),
        "sections_failed": text.count(": FAILED =="),
    }


def run_report_small_suite(seed: int = 0) -> Dict:
    """Sequential vs parallel vs warm-cache report runs.

    ``parallel_speedup`` (jobs=1 cold over jobs=4 cold) is only
    meaningful on a multi-core host; ``cpu_count`` is recorded so
    trajectory entries from starved runners read as what they are.
    """
    results: Dict[str, Dict] = {"jobs1_cold": run_report_small(jobs=1, seed=seed)}
    with tempfile.TemporaryDirectory(prefix="repro-report-cache-") as cache_dir:
        # Same dir both times: first run populates, second run hits.
        results["jobs4_cold"] = run_report_small(jobs=4, seed=seed, cache_dir=cache_dir)
        results["jobs4_warm"] = run_report_small(jobs=4, seed=seed, cache_dir=cache_dir)
    parallel = results["jobs4_cold"]["wall_seconds"]
    results["parallel_speedup"] = (
        round(results["jobs1_cold"]["wall_seconds"] / parallel, 2) if parallel else None
    )
    results["cpu_count"] = os.cpu_count()
    return results


SCENARIOS = {
    "probe_storm": run_probe_storm,
    "memorygram": run_memorygram,
    "covert_frames": run_covert_frames,
    "link_covert": run_link_covert,
}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run_all() -> Dict:
    results: Dict[str, Dict] = {}
    for name, scenario in SCENARIOS.items():
        results[name] = {}
        for backend in BACKENDS:
            results[name][backend] = scenario(backend)
        fast = results[name]["vectorized"]["accesses_per_sec"]
        slow = results[name]["scalar"]["accesses_per_sec"]
        results[name]["speedup"] = round(fast / slow, 2) if slow else None
    results["tracing"] = run_tracing_overhead()
    results["report_small"] = run_report_small_suite()
    return results


def append_trajectory(results: Dict) -> None:
    trajectory = []
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    trajectory.append(
        {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), "scenarios": results}
    )
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")


def format_results(results: Dict) -> str:
    lines = [
        f"{'scenario':<14}  {'backend':<10}  {'accesses/s':>12}  "
        f"{'events/s':>10}  {'wall s':>8}"
    ]
    for name, entry in results.items():
        if name == "report_small":
            for mode in ("jobs1_cold", "jobs4_cold", "jobs4_warm"):
                record = entry[mode]
                lines.append(
                    f"{name:<14}  {mode:<10}  "
                    f"{record['sections_ok']:>9} ok  "
                    f"{record['sections_failed']:>8} bad  "
                    f"{record['wall_seconds']:>8.3f}"
                )
            lines.append(
                f"{name:<14}  {'speedup':<10}  {entry['parallel_speedup']:>11}x"
                f"  (on {entry['cpu_count']} cpus)"
            )
            continue
        if name == "tracing":
            for mode in ("off", "on"):
                record = entry[mode]
                lines.append(
                    f"{name:<14}  {mode:<10}  "
                    f"{record['accesses_per_sec']:>12,}  "
                    f"{record['events_per_sec']:>10,}  "
                    f"{record['wall_seconds']:>8.3f}"
                )
            lines.append(
                f"{name:<14}  {'overhead':<10}  {entry['overhead_pct']:>11}%"
            )
            continue
        for backend in BACKENDS:
            record = entry[backend]
            lines.append(
                f"{name:<14}  {backend:<10}  {record['accesses_per_sec']:>12,}  "
                f"{record['events_per_sec']:>10,}  {record['wall_seconds']:>8.3f}"
            )
        lines.append(f"{name:<14}  {'speedup':<10}  {entry['speedup']:>11}x")
    return "\n".join(lines)


def main() -> None:
    results = run_all()
    print(format_results(results))
    append_trajectory(results)
    print(f"\ntrajectory appended to {TRAJECTORY_PATH}")


# ----------------------------------------------------------------------
# Benchmark-suite entry point
# ----------------------------------------------------------------------
@pytest.mark.paper
def test_perf_probe_storm_speedup(benchmark, print_result):
    """The vectorized backend must clear 5x scalar throughput on the
    256-set memorygram probe storm (the PR's acceptance bar)."""
    results = benchmark.pedantic(
        lambda: {"probe_storm": {b: run_probe_storm(b) for b in BACKENDS}},
        rounds=1,
        iterations=1,
    )
    storm = results["probe_storm"]
    speedup = (
        storm["vectorized"]["accesses_per_sec"]
        / storm["scalar"]["accesses_per_sec"]
    )
    storm["speedup"] = round(speedup, 2)
    print_result(format_results(results))
    append_trajectory(results)
    assert speedup >= 5.0, f"vectorized speedup {speedup:.1f}x below the 5x bar"


@pytest.mark.paper
def test_perf_memorygram_no_regression(benchmark, print_result):
    """The vectorized backend must not lose to scalar on the memorygram
    capture.  Before the epoch access plan was precomputed it did (0.9x:
    the capture re-derived paddrs, rounds, and bank groups every sweep);
    the plan cache restored the fast path, and this pins it at parity or
    better.  Median of three seeds to keep scheduler noise out."""

    def measure():
        return {
            backend: [
                run_memorygram(backend, seed=3 + i)["accesses_per_sec"]
                for i in range(3)
            ]
            for backend in BACKENDS
        }

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = statistics.median(rates["vectorized"]) / statistics.median(
        rates["scalar"]
    )
    print_result(
        f"memorygram vectorized/scalar = {ratio:.2f}x "
        f"(vector {rates['vectorized']}, scalar {rates['scalar']})"
    )
    assert ratio >= 1.0, (
        f"vectorized backend regressed to {ratio:.2f}x scalar on memorygram"
    )


@pytest.mark.paper
def test_perf_report_parallel_speedup(benchmark, print_result):
    """`report --small --jobs 4` must be >= 3x the sequential run and keep
    every section healthy.  The wall-clock bar only applies on hosts with
    at least 4 CPUs -- on starved runners the suite still runs (pinning
    correctness of the parallel path) and records the timings."""
    results = benchmark.pedantic(
        lambda: {"report_small": run_report_small_suite()}, rounds=1, iterations=1
    )
    suite = results["report_small"]
    print_result(format_results(results))
    append_trajectory(results)
    for mode in ("jobs1_cold", "jobs4_cold", "jobs4_warm"):
        assert suite[mode]["sections_failed"] == 0, f"{mode} had failed sections"
        assert suite[mode]["sections_ok"] == suite["jobs1_cold"]["sections_ok"]
    if (os.cpu_count() or 1) >= 4:
        assert suite["parallel_speedup"] >= 3.0, (
            f"jobs=4 speedup {suite['parallel_speedup']}x below the 3x bar "
            f"on a {os.cpu_count()}-cpu host"
        )


if __name__ == "__main__":
    main()
