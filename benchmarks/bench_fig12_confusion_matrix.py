"""Fig 12: application fingerprinting accuracy and confusion matrix.

The heaviest benchmark: collects traces for all six victims and trains the
classifier.  The paper reports 99.91% with 1500 traces/app; at bench scale
(6 traces/app) the attack should still be near-perfect.
"""

import pytest

from repro.experiments import fig12_fingerprint


@pytest.mark.paper
def test_fig12_confusion_matrix(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig12_fingerprint.run(seed=5, traces_per_app=6, num_sets=128),
        rounds=1,
        iterations=1,
    )
    print_result(result)
    outcome = result.extras["result"]
    assert outcome.accuracy >= 0.85
    # Paper shape: most classes perfect, confusion concentrated on few pairs.
    confusion = outcome.confusion
    diagonal = confusion.trace()
    assert diagonal >= 0.85 * confusion.sum()
