"""Fig 5: eviction exactly at the 16th access, local and remote."""

import pytest

from repro.experiments import fig05_eviction


@pytest.mark.paper
def test_fig05_eviction_validation(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig05_eviction.run(seed=7), rounds=1, iterations=1
    )
    print_result(result)
    assert "deterministic LRU (local): True" in result.notes
    assert "(remote): True" in result.notes
    for row in result.rows:
        assert row[1] == 16  # eviction at the associativity
    # Fig 5's y-axis: the latency jump is visible in the recorded curve.
    latencies = result.extras["remote_latencies"]
    assert latencies[-1] > latencies[0] + 100
