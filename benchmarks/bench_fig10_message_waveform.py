"""Fig 10: the covert text message and its two timing levels."""

import pytest

from repro.experiments import fig10_message


@pytest.mark.paper
def test_fig10_message_waveform(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig10_message.run(seed=3, num_sets=4), rounds=1, iterations=1
    )
    print_result(result)
    rows = {row[0]: row for row in result.rows}
    # The two signalling levels sit near the paper's 630 / 950 cycles.
    level0 = float(rows["'0' level (cycles)"][1])
    level1 = float(rows["'1' level (cycles)"][1])
    assert 550 <= level0 <= 750
    assert 850 <= level1 <= 1300
    error = float(rows["bit error rate"][1].rstrip("%"))
    assert error <= 5.0
    # The message round-trips (allowing a character or two of corruption).
    outcome = result.extras["transmission"]
    sent = "Hello! How are you?"
    received = outcome.received_text()
    matches = sum(1 for a, b in zip(sent, received) if a == b)
    assert matches >= len(sent) - 2
