"""Table I: recovering the L2 architecture from user space."""

import pytest

from repro.experiments import table1_cache


@pytest.mark.paper
def test_table1_reverse_engineering(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: table1_cache.run(seed=7), rounds=1, iterations=1
    )
    print_result(result)
    by_attr = {row[0]: row for row in result.rows}
    # Measured values equal the paper's Table I on the full-scale box.
    assert by_attr["L2 cache size"][1] == "4MB"
    assert by_attr["Number of Sets"][1] == "2048"
    assert by_attr["Cache line size"][1] == "128B"
    assert by_attr["Cache lines per set"][1] == "16"
    assert by_attr["Replacement Policy"][1] == "LRU"
