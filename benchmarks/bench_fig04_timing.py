"""Fig 4: local and remote GPU access-time clusters."""

import pytest

from repro.experiments import fig04_timing


@pytest.mark.paper
def test_fig04_timing_histogram(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig04_timing.run(seed=7), rounds=3, iterations=1
    )
    print_result(result)
    report = result.extras["report"]
    assert report.clusters_are_separated()
    # The four clusters appear in the paper's order with sane magnitudes.
    means = [row[1] for row in result.rows]
    assert means == sorted(means)
    assert 200 < means[0] < 350  # local hit ~265
    assert 800 < means[3] < 1100  # remote miss ~950
