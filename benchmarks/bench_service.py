"""Load-generation harness for the attack-range service.

Drives a live in-process service (`repro.service.start_service`) with
sustained concurrent submits from many tenant threads -- one cold pass
against an empty artifact cache and one warm pass over the same seeds --
and records sustained request rate, p50/p99 submit-to-finish job
latency, and the admission rejection rate into
``benchmarks/perf_trajectory.json`` (the same trajectory file the
simulator perf harness appends to).

The driver behaves like a polite tenant: a 429 (rate limit, concurrency
cap, queue depth) backs off for the server's ``retry_after`` hint and
resubmits, so the recorded rejection rate is the *admission pressure*
the quota knobs produced, not a failure count.  Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --tenants 12 --jobs 4
"""

from __future__ import annotations

import json
import math
import pathlib
import tempfile
import threading
import time
from typing import Dict, List, Sequence

from repro.service import ServiceConfig, ServiceError, start_service

TRAJECTORY_PATH = pathlib.Path(__file__).parent / "perf_trajectory.json"

#: Defaults sized for a 4-core CI host: 8 tenants keep the acceptance
#: bar's fleet width busy without the GIL starving any single job.
DEFAULT_TENANTS = 8
DEFAULT_JOBS_PER_TENANT = 3
DEFAULT_WORKERS = 8
DEFAULT_EXPERIMENTS = ("fig10",)


def _percentile(samples: Sequence[float], quantile: float) -> float:
    """Nearest-rank percentile; robust for the small sample counts here."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(quantile * len(ordered)) - 1))
    return ordered[rank]


class _TenantDriver(threading.Thread):
    """One tenant's submit loop: back off on 429, then await every job."""

    def __init__(self, client, tenant: str, seeds: Sequence[int],
                 experiments: Sequence[str]) -> None:
        super().__init__(name=f"tenant-{tenant}", daemon=True)
        self.client = client
        self.tenant = tenant
        self.seeds = list(seeds)
        self.experiments = list(experiments)
        self.attempts = 0
        self.rejections = 0
        self.finals: List[Dict] = []
        self.error: Exception | None = None

    def run(self) -> None:
        try:
            job_ids = []
            for seed in self.seeds:
                job_ids.append(self._submit_with_backoff(seed))
            for job_id in job_ids:
                self.finals.append(self.client.wait(job_id, timeout=300.0))
        except Exception as exc:  # surfaced by the harness
            self.error = exc

    def _submit_with_backoff(self, seed: int) -> str:
        while True:
            self.attempts += 1
            try:
                return self.client.submit(
                    self.tenant, self.experiments, seed=seed
                )["job_id"]
            except ServiceError as exc:
                if exc.status != 429:
                    raise
                self.rejections += 1
                time.sleep(exc.retry_after or 0.05)


def run_pass(client, tenants: int, jobs_per_tenant: int,
             experiments: Sequence[str], seed_base: int) -> Dict:
    """One full load pass; every (tenant, job) pair gets its own seed so
    a pass is uniformly cold (fresh cache) or uniformly warm (rerun)."""
    drivers = [
        _TenantDriver(
            client,
            f"tenant-{index}",
            seeds=[
                seed_base + index * jobs_per_tenant + job
                for job in range(jobs_per_tenant)
            ],
            experiments=experiments,
        )
        for index in range(tenants)
    ]
    start = time.perf_counter()
    for driver in drivers:
        driver.start()
    for driver in drivers:
        driver.join()
    wall = time.perf_counter() - start
    for driver in drivers:
        if driver.error is not None:
            raise driver.error

    finals = [final for driver in drivers for final in driver.finals]
    failed = [final for final in finals if final["state"] != "done"]
    if failed:
        raise RuntimeError(f"{len(failed)} jobs failed: {failed[0]}")
    attempts = sum(driver.attempts for driver in drivers)
    rejections = sum(driver.rejections for driver in drivers)
    latencies = [final["latency"] for final in finals]
    return {
        "jobs": len(finals),
        "submit_attempts": attempts,
        "rejections": rejections,
        "rejection_rate": round(rejections / attempts, 4),
        "requests_per_sec": round(attempts / wall, 2),
        "jobs_per_sec": round(len(finals) / wall, 2),
        "latency_p50_s": round(_percentile(latencies, 0.50), 4),
        "latency_p99_s": round(_percentile(latencies, 0.99), 4),
        "cache_hits": sum(final["cache_hits"] for final in finals),
        "cache_misses": sum(final["cache_misses"] for final in finals),
        "wall_seconds": round(wall, 3),
    }


def run_load(
    tenants: int = DEFAULT_TENANTS,
    jobs_per_tenant: int = DEFAULT_JOBS_PER_TENANT,
    workers: int = DEFAULT_WORKERS,
    experiments: Sequence[str] = DEFAULT_EXPERIMENTS,
) -> Dict:
    """Cold + warm pass against one service over a shared fresh cache."""
    with tempfile.TemporaryDirectory(prefix="bench-service-") as cache_dir:
        config = ServiceConfig(
            workers=workers,
            # Tight enough that the driver provably exercises admission
            # control (nonzero rejection rate), loose enough to converge.
            max_tenant_jobs=2,
            rate=10.0,
            burst=4.0,
            queue_depth=tenants * jobs_per_tenant,
            slices_per_box=2,
            max_boxes=(tenants + 1) // 2,
            cache_dir=cache_dir,
        )
        with start_service(config) as handle:
            cold = run_pass(
                handle.client, tenants, jobs_per_tenant, experiments,
                seed_base=0,
            )
            warm = run_pass(
                handle.client, tenants, jobs_per_tenant, experiments,
                seed_base=0,
            )
    assert cold["cache_hits"] == 0, cold
    assert warm["cache_hits"] >= warm["jobs"], warm
    return {
        "service_load": {
            "tenants": tenants,
            "jobs_per_tenant": jobs_per_tenant,
            "workers": workers,
            "experiments": list(experiments),
            "cold": cold,
            "warm": warm,
            "warm_speedup": round(
                cold["latency_p50_s"] / max(warm["latency_p50_s"], 1e-9), 2
            ),
        }
    }


def append_trajectory(results: Dict) -> None:
    trajectory = []
    if TRAJECTORY_PATH.exists():
        trajectory = json.loads(TRAJECTORY_PATH.read_text())
    trajectory.append(
        {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), "scenarios": results}
    )
    TRAJECTORY_PATH.write_text(json.dumps(trajectory, indent=2) + "\n")


def format_results(results: Dict) -> str:
    load = results["service_load"]
    lines = [
        f"service load: {load['tenants']} tenants x "
        f"{load['jobs_per_tenant']} jobs ({load['workers']} workers, "
        f"{','.join(load['experiments'])})",
        f"{'pass':<6} {'req/s':>8} {'jobs/s':>8} {'p50 s':>8} {'p99 s':>8} "
        f"{'reject%':>8} {'hits':>6} {'wall s':>8}",
    ]
    for name in ("cold", "warm"):
        entry = load[name]
        lines.append(
            f"{name:<6} {entry['requests_per_sec']:>8} "
            f"{entry['jobs_per_sec']:>8} {entry['latency_p50_s']:>8} "
            f"{entry['latency_p99_s']:>8} "
            f"{entry['rejection_rate'] * 100:>7.1f}% "
            f"{entry['cache_hits']:>6} {entry['wall_seconds']:>8}"
        )
    lines.append(f"warm p50 speedup: {load['warm_speedup']}x")
    return "\n".join(lines)


def test_service_load_smoke():
    """A reduced pass keeps the harness itself under test: every job
    completes, quotas are exercised, and the warm pass hits the cache."""
    results = run_load(tenants=3, jobs_per_tenant=2, workers=3)
    load = results["service_load"]
    for name in ("cold", "warm"):
        assert load[name]["jobs"] == 6
        assert load[name]["latency_p99_s"] >= load[name]["latency_p50_s"] > 0
        assert load[name]["submit_attempts"] >= 6
    assert load["cold"]["cache_hits"] == 0
    assert load["warm"]["cache_hits"] >= 6


def main() -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=DEFAULT_TENANTS)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS_PER_TENANT)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument(
        "--experiments", nargs="+", default=list(DEFAULT_EXPERIMENTS)
    )
    options = parser.parse_args()
    results = run_load(
        tenants=options.tenants,
        jobs_per_tenant=options.jobs,
        workers=options.workers,
        experiments=options.experiments,
    )
    print(format_results(results))
    append_trajectory(results)
    print(f"\ntrajectory appended to {TRAJECTORY_PATH}")


if __name__ == "__main__":
    main()
