"""Fig 11: distinct memorygrams for the six victim applications."""

import numpy as np
import pytest

from repro.analysis.features import memorygram_features
from repro.experiments import fig11_memorygrams


@pytest.mark.paper
def test_fig11_memorygrams(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: fig11_memorygrams.run(seed=5, num_sets=128), rounds=1, iterations=1
    )
    print_result(result)
    grams = result.extras["memorygrams"]
    assert len(grams) == 6
    # Every victim leaves a footprint...
    for app, gram in grams.items():
        assert gram.total_misses() > 100, app
    # ...and the footprints are pairwise distinguishable in feature space.
    features = {app: memorygram_features(gram) for app, gram in grams.items()}
    apps = list(features)
    for i, a in enumerate(apps):
        for b in apps[i + 1 :]:
            assert not np.allclose(features[a], features[b]), (a, b)
