"""Extension: bandwidth scaling across disjoint GPU pairs."""

import pytest

from repro.experiments import ext_multi_gpu


@pytest.mark.paper
def test_ext_multi_gpu_scaling(benchmark, print_result):
    result = benchmark.pedantic(
        lambda: ext_multi_gpu.run(seed=3, pair_counts=(1, 2, 4)),
        rounds=1,
        iterations=1,
    )
    print_result(result)
    bandwidths = [row[2] for row in result.rows]
    errors = [row[3] for row in result.rows]
    # Near-linear scaling: 4 pairs deliver >3x one pair's bandwidth.
    assert bandwidths[2] > 3.0 * bandwidths[0]
    # Disjoint contention domains: error does not blow up with pairs.
    assert max(errors) <= 8.0
