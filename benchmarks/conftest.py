"""Benchmark configuration.

Every benchmark regenerates one table/figure of the paper on the
full-scale simulated DGX-1 and prints the measured rows next to the
paper's numbers.  The timed quantity is the *attack phase* of each
experiment (the interesting cost); setup is excluded where possible.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper: benchmark reproducing a specific paper table/figure"
    )


@pytest.fixture
def print_result(capsys, request):
    """Emit an ExperimentResult summary to the real terminal and to
    benchmarks/paper_results.txt (so `pytest benchmarks/ --benchmark-only`
    leaves a readable artifact even with output capture on)."""
    import pathlib

    results_file = pathlib.Path(__file__).parent / "paper_results.txt"

    def _print(result):
        text = result.summary() if hasattr(result, "summary") else str(result)
        block = f"\n[{request.node.name}]\n{text}\n"
        with capsys.disabled():
            print(block)
        with results_file.open("a") as sink:
            sink.write(block)

    return _print
